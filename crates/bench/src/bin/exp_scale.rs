//! Massive-corpus setup: blocked vs all-pairs scoring at 1k–100k sources.
//!
//! The paper's corpus topped out at 817 sources per domain, where
//! exhaustive pairwise attribute scoring is affordable. This experiment
//! drives the setup pipeline over the synthetic scale corpus
//! (`udi_datagen::scale`) whose vocabulary keeps growing with the source
//! count, and measures what the n-gram block index buys:
//!
//! * **blocked** — the default path: only candidate pairs sharing a
//!   character bigram are scored;
//! * **all-pairs** — `blocking: false`, the pre-blocking exhaustive path.
//!
//! The headline claim (asserted in the full run): blocked setup over
//! **10k** sources finishes in less wall-clock than all-pairs setup over
//! **2k**, and blocked setup over **100k** sources completes within an
//! 8 GB memory budget (peak RSS is recorded per entry).
//!
//! Results are persisted to `results/BENCH_scale.json` (override with
//! `--out PATH`). Flags:
//!
//! * `--smoke` — 1k sources only (both paths), for CI;
//! * `--baseline PATH` — regression gate: fail if the blocked path's
//!   *normalized* setup time (blocked ÷ all-pairs at 1k, a
//!   machine-portable ratio) regressed more than 20% vs the recorded
//!   baseline;
//! * `--trace out.jsonl` — structured trace (`setup.block`,
//!   `setup.score`, per-shard spans).

use std::time::Instant;

use udi_bench::{banner, seed, BenchObs};
use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{scale_catalog, ScaleConfig};
use udi_obs::{fmt_rss, peak_rss_bytes};

/// One measured setup run.
struct Entry {
    mode: &'static str,
    sources: usize,
    gen_ms: f64,
    setup_ms: f64,
    /// Per-stage split of `setup_ms` (import, med-schema, p-mappings,
    /// consolidation), from the engine's own timings.
    stages: [f64; 4],
    attrs: usize,
    pairs_scored: usize,
    peak_rss: Option<u64>,
}

fn run_one(obs: &BenchObs, n: usize, blocking: bool) -> Entry {
    let cfg = ScaleConfig {
        n_sources: n,
        seed: seed(),
        ..ScaleConfig::default()
    };
    let t0 = Instant::now();
    let catalog = scale_catalog(&cfg);
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;

    let ucfg = UdiConfig {
        blocking,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
        ..UdiConfig::default()
    };
    let t1 = Instant::now();
    let system = match obs.sink() {
        Some(sink) => UdiSystem::setup_observed(catalog, ucfg, sink),
        None => UdiSystem::setup(catalog, ucfg),
    }
    .expect("setup");
    let setup_ms = t1.elapsed().as_secs_f64() * 1e3;
    let report = system.report();
    let stages = report
        .timings
        .map(|t| {
            [
                t.import.as_secs_f64() * 1e3,
                t.med_schema.as_secs_f64() * 1e3,
                t.pmappings.as_secs_f64() * 1e3,
                t.consolidation.as_secs_f64() * 1e3,
            ]
        })
        .unwrap_or_default();
    Entry {
        mode: if blocking { "blocked" } else { "all-pairs" },
        sources: n,
        gen_ms,
        setup_ms,
        stages,
        attrs: report.n_attributes,
        pairs_scored: report.cache.sim_misses,
        // VmHWM is a process-lifetime high-water mark; entries run in
        // increasing memory order so each reading approximates its own run.
        peak_rss: peak_rss_bytes(),
    }
}

fn print_entry(e: &Entry) {
    println!(
        "{:>10} {:>8} {:>10.0}ms {:>10.0}ms {:>8} {:>10} {:>10}   [imp {:.0} med {:.0} pmap {:.0} cons {:.0}]",
        e.mode,
        e.sources,
        e.gen_ms,
        e.setup_ms,
        e.attrs,
        e.pairs_scored,
        fmt_rss(e.peak_rss),
        e.stages[0],
        e.stages[1],
        e.stages[2],
        e.stages[3],
    );
}

/// Hand-rolled JSON writer (flat schema, stable key order) — keeps the
/// artifact diffable and greppable without a serializer in the loop.
fn render_json(smoke: bool, entries: &[Entry], norm_blocked_1k: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"udi-exp-scale/v1\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"norm_blocked_1k\": {norm_blocked_1k:.4},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"sources\": {}, \"gen_ms\": {:.1}, \
             \"setup_ms\": {:.1}, \"attrs\": {}, \"pairs_scored\": {}, \
             \"peak_rss_bytes\": {}}}{}\n",
            e.mode,
            e.sources,
            e.gen_ms,
            e.setup_ms,
            e.attrs,
            e.pairs_scored,
            e.peak_rss
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".to_owned()),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract a numeric field from a flat JSON document — enough to read the
/// committed baseline back without a parser dependency.
fn json_f64_field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse `--flag` / `--flag VALUE` / `--flag=VALUE` style arguments.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_owned());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        arg_value(&args, "--out").unwrap_or_else(|| "results/BENCH_scale.json".to_owned());
    let baseline = arg_value(&args, "--baseline");

    banner(if smoke {
        "Massive-corpus setup, smoke run (1k sources)"
    } else {
        "Massive-corpus setup: blocked vs all-pairs (1k-100k sources)"
    });
    let obs = BenchObs::from_args();

    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "mode", "#src", "gen", "setup", "attrs", "pairs", "peak RSS"
    );

    // Increasing memory order (see `Entry::peak_rss`).
    let plan: Vec<(usize, bool)> = match std::env::var("UDI_SCALE_ENTRIES") {
        // Ad-hoc probing: UDI_SCALE_ENTRIES="blocked:10000,all-pairs:2000".
        Ok(spec) => spec
            .split(',')
            .filter_map(|e| {
                let (mode, n) = e.split_once(':')?;
                Some((n.trim().parse().ok()?, mode.trim() == "blocked"))
            })
            .collect(),
        Err(_) if smoke => vec![(1_000, true), (1_000, false)],
        Err(_) => vec![
            (1_000, true),
            (1_000, false),
            (2_000, false),
            (10_000, true),
            (100_000, true),
        ],
    };
    // Unrecorded warm-up: the first setup in a process pays one-off costs
    // (allocator growth, lazy page-ins) that would skew the first entry.
    let _ = run_one(&obs, 200, true);

    let mut entries = Vec::new();
    for (n, blocking) in plan {
        let e = run_one(&obs, n, blocking);
        print_entry(&e);
        entries.push(e);
    }

    let setup_of = |mode: &str, n: usize| {
        entries
            .iter()
            .find(|e| e.mode == mode && e.sources == n)
            .map(|e| e.setup_ms)
    };
    let norm_blocked_1k = match (setup_of("blocked", 1_000), setup_of("all-pairs", 1_000)) {
        (Some(b), Some(a)) => b / a,
        _ => f64::NAN,
    };
    println!();
    println!(
        "blocked/all-pairs setup ratio at 1k sources: {norm_blocked_1k:.3} \
         (machine-portable regression metric)"
    );

    if let (Some(blocked_10k), Some(allpairs_2k)) =
        (setup_of("blocked", 10_000), setup_of("all-pairs", 2_000))
    {
        println!(
            "Headline: blocked setup at 10k sources ({blocked_10k:.0}ms) vs \
             all-pairs at 2k ({allpairs_2k:.0}ms)"
        );
        assert!(
            blocked_10k < allpairs_2k,
            "blocked 10k setup ({blocked_10k:.0}ms) must beat all-pairs 2k \
             ({allpairs_2k:.0}ms)"
        );
        let rss_100k = entries
            .iter()
            .find(|e| e.sources == 100_000)
            .and_then(|e| e.peak_rss);
        if let Some(b) = rss_100k {
            assert!(
                b < 8 << 30,
                "100k-source setup exceeded the 8 GiB budget: {}",
                fmt_rss(Some(b))
            );
        }
    }

    if let Err(e) = std::fs::write(&out_path, render_json(smoke, &entries, norm_blocked_1k)) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("results written to {out_path}");

    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let Some(base) = json_f64_field(&text, "norm_blocked_1k") else {
            eprintln!("baseline {path} has no norm_blocked_1k field");
            std::process::exit(2);
        };
        println!("baseline ratio {base:.3}, current {norm_blocked_1k:.3}");
        assert!(
            norm_blocked_1k <= base * 1.2,
            "blocked setup regressed >20% vs baseline: ratio {norm_blocked_1k:.3} \
             vs baseline {base:.3}"
        );
        println!("regression gate passed (within 20% of baseline)");
    }

    println!("peak RSS: {}", fmt_rss(peak_rss_bytes()));
    obs.finish();
}

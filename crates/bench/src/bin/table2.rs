//! Table 2 — "Precision, recall and F-measure of query answering of the UDI
//! system compared with a manually created integration system."
//!
//! People and Bib are scored against the true golden standard (the paper
//! built these by hand; ours comes from generator ground truth). Movie, Car
//! and Course are scored against the approximate golden standard of §7.2
//! (correct answers among those returned by UDI or Source), exactly as in
//! the paper.

use udi_baselines::Udi;
use udi_bench::{banner, fmt_prf, prepare_traced, seed, sources_for, BenchObs};
use udi_datagen::Domain;

fn main() {
    banner("Table 2: UDI vs manual integration (P / R / F per domain)");
    let obs = BenchObs::from_args();
    println!(
        "{:<10} {:>9} {:>9} {:>9}",
        "Domain", "Precision", "Recall", "F-measure"
    );

    println!("--- golden standard ---");
    for domain in [Domain::People, Domain::Bib] {
        let d = prepare_traced(&obs, domain, Some(sources_for(domain)), seed()).expect("setup");
        let golden = d.golden_rows();
        let m = d.evaluate(&Udi(&d.udi), &golden);
        println!("{:<10} {}", domain.name(), fmt_prf(m));
    }

    println!("--- approximate golden standard ---");
    for domain in [
        Domain::Movie,
        Domain::Car,
        Domain::Course,
        Domain::People,
        Domain::Bib,
    ] {
        let d = prepare_traced(&obs, domain, Some(sources_for(domain)), seed()).expect("setup");
        let approx = d.approximate_golden_rows();
        let m = d.evaluate(&Udi(&d.udi), &approx);
        println!("{:<10} {}", domain.name(), fmt_prf(m));
    }

    println!();
    println!(
        "Paper reference: golden People .918 F, Bib .92 F; approximate golden \
         Movie .924, Car .957, Course .971, People 1.0, Bib .977."
    );
    obs.finish();
}

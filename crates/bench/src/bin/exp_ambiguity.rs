//! Extension experiment: the Example 2.1 ambiguity stress corpus.
//!
//! The paper motivates probabilistic mediated schemas with a corpus where
//! one label (`phone`, `address`) genuinely means different things in
//! different sources. The benchmark People corpus — like the paper's actual
//! web corpus — contains no such per-source ambiguity (any approach's flat
//! precision would otherwise collapse; see EXPERIMENTS.md). This experiment
//! builds that adversarial corpus explicitly and measures how every
//! approach copes, plus the ranking quality (R-P) of UDI vs SingleMed —
//! the regime where the p-med-schema's extra expressive power
//! (Theorem 3.5) is visible in answers.

use udi_baselines::{Integrator, SingleMed, SourceDirect, TopMapping, Udi};
use udi_bench::{ambiguous_people_concepts, banner, fmt_prf, seed};
use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{generate_with_concepts, Domain, GenConfig};
use udi_eval::{
    generate_workload, precision_at_recall, rp_curve, score, GoldenIntegrator, Metrics,
};

fn main() {
    banner("Extension: Example 2.1 ambiguity stress corpus (49 sources)");
    let gen = generate_with_concepts(
        Domain::People,
        ambiguous_people_concepts(),
        &GenConfig {
            n_sources: Some(49),
            seed: seed(),
            ..GenConfig::default()
        },
    );
    let amb: Vec<&str> = gen
        .truth
        .attribute_names()
        .into_iter()
        .filter(|a| gen.truth.is_ambiguous(a))
        .collect();
    println!("ambiguous labels in corpus: {amb:?}");

    let udi = UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
    let sm = SingleMed::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
    let golden = GoldenIntegrator::new(&gen.catalog, &gen.truth);
    let queries = generate_workload(&gen, 12, seed().wrapping_add(1));

    println!(
        "\n{:<11} {:>9} {:>9} {:>9}",
        "Approach", "Precision", "Recall", "F-measure"
    );
    let approaches: Vec<Box<dyn Integrator + '_>> = vec![
        Box::new(Udi(&udi)),
        Box::new(sm),
        Box::new(TopMapping::new(&udi)),
        Box::new(SourceDirect::new(&gen.catalog)),
    ];
    for a in &approaches {
        let per_query: Vec<Metrics> = queries
            .iter()
            .map(|q| {
                let rows = golden.golden_rows(q);
                score(a.answer(q).flat(), rows.iter())
            })
            .collect();
        let m = Metrics::average(&per_query);
        println!("{:<11} {}", a.name(), fmt_prf(m));
    }

    // Ranking quality: mean interpolated precision over the workload.
    println!("\nR-P comparison (mean interpolated precision at recall levels):");
    let levels: Vec<f64> = (1..=10).map(|k| k as f64 / 10.0).collect();
    let sm2 = SingleMed::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
    for (label, system) in [("UDI", &udi as &UdiSystem), ("SingleMed", sm2.system())] {
        let mut mean = 0.0;
        let mut n = 0;
        for q in &queries {
            let rows = golden.golden_rows(q);
            if rows.is_empty() {
                continue;
            }
            let curve = rp_curve(&system.answer(q).combined(), &rows);
            mean += levels
                .iter()
                .map(|&r| precision_at_recall(&curve, r))
                .sum::<f64>()
                / levels.len() as f64;
            n += 1;
        }
        println!("  {label:<10} {:.3}", mean / n.max(1) as f64);
    }
    println!(
        "\nExpected shape: flat precision degrades for every approach under \
         genuine ambiguity, but UDI degrades least, keeps the highest recall, \
         and ranks correctly-correlated answers above crossed ones \
         (Example 2.1, Figure 1(c))."
    );
    println!("peak RSS: {}", udi_obs::fmt_rss(udi_obs::peak_rss_bytes()));
}

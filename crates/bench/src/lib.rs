#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Shared plumbing for the reproduction binaries (one per paper
//! table/figure) and the criterion benchmarks.
//!
//! Every binary accepts the environment variable `UDI_SCALE` — a fraction
//! in `(0, 1]` applied to the paper's Table 1 source counts — so the whole
//! suite can be smoke-tested quickly (`UDI_SCALE=0.1`) or run at full scale
//! (default). `UDI_SEED` overrides the corpus seed. Binaries also accept
//! `--trace out.jsonl` (parsed by [`BenchObs::from_args`]) to record a
//! structured trace of the run; see `OBSERVABILITY.md`.

use std::sync::Arc;

use udi_datagen::Domain;
use udi_obs::{FanoutSink, JsonLinesSink, MemorySink, Recorder, Sink, TraceSummary};

/// The corpus scale factor from `UDI_SCALE` (default 1.0 = paper scale).
pub fn scale() -> f64 {
    std::env::var("UDI_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(1.0)
}

/// The corpus seed from `UDI_SEED` (default 2008, the venue year).
pub fn seed() -> u64 {
    std::env::var("UDI_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2008)
}

/// Scaled source count for a domain (at least 10 sources).
pub fn sources_for(domain: Domain) -> usize {
    let n = (domain.default_source_count() as f64 * scale()).round() as usize;
    n.max(10)
}

/// Print a header banner for an experiment binary.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!(
        "(scale={}, seed={}; set UDI_SCALE/UDI_SEED to override)",
        scale(),
        seed()
    );
    println!("{}", "=".repeat(72));
}

/// Tracing support for one bench-binary run, driven by the `--trace
/// out.jsonl` command-line flag.
///
/// With the flag, every event is written to the JSON-lines file *and*
/// buffered in memory so [`finish`](BenchObs::finish) can print a per-span
/// summary table at exit. Without it, [`sink`](BenchObs::sink) is `None`
/// and nothing is recorded — the system under test runs with its default
/// (counters-only) instrumentation.
pub struct BenchObs {
    path: Option<String>,
    memory: Option<Arc<MemorySink>>,
    fanout: Option<Arc<dyn Sink>>,
}

impl BenchObs {
    /// Parse `--trace PATH` (or `--trace=PATH`) from the process arguments.
    ///
    /// Exits with an error message if the flag is present but the file
    /// cannot be created — a bench run that silently drops its trace is
    /// worse than one that fails fast.
    pub fn from_args() -> BenchObs {
        let args: Vec<String> = std::env::args().collect();
        let mut path = None;
        for (i, a) in args.iter().enumerate() {
            if a == "--trace" {
                path = args.get(i + 1).cloned();
                if path.is_none() {
                    eprintln!("--trace requires a file path");
                    std::process::exit(2);
                }
            } else if let Some(p) = a.strip_prefix("--trace=") {
                path = Some(p.to_owned());
            }
        }
        BenchObs::to_path(path)
    }

    fn to_path(path: Option<String>) -> BenchObs {
        let Some(path) = path else {
            return BenchObs {
                path: None,
                memory: None,
                fanout: None,
            };
        };
        let jsonl = match JsonLinesSink::create(&path) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(2);
            }
        };
        let memory = Arc::new(MemorySink::new());
        let fanout: Arc<dyn Sink> = Arc::new(FanoutSink::new(vec![jsonl, memory.clone()]));
        BenchObs {
            path: Some(path),
            memory: Some(memory),
            fanout: Some(fanout),
        }
    }

    /// The sink to hand to `UdiSystem::setup_observed` /
    /// `prepare_observed`; `None` when `--trace` was not given.
    pub fn sink(&self) -> Option<Arc<dyn Sink>> {
        self.fanout.clone()
    }

    /// Whether `--trace` was given.
    pub fn is_enabled(&self) -> bool {
        self.fanout.is_some()
    }

    /// A recorder for binary-local spans (e.g. wrapping data generation),
    /// interleaved with the engine's events in the same trace. Disabled
    /// when tracing is off.
    pub fn recorder(&self) -> Recorder {
        match &self.fanout {
            Some(s) => Recorder::new(s.clone()),
            None => Recorder::disabled(),
        }
    }

    /// Flush the trace file and print the per-span/per-counter summary
    /// table. A no-op without `--trace`.
    pub fn finish(self) {
        let (Some(path), Some(memory), Some(fanout)) = (self.path, self.memory, self.fanout) else {
            return;
        };
        fanout.flush();
        let summary = TraceSummary::from_events(&memory.events());
        println!();
        println!("trace written to {path}");
        print!("{summary}");
    }
}

/// [`udi_eval::harness::prepare`], routed through this run's trace sink
/// when `--trace` is active so the setup pipeline's spans and counters
/// land in the trace file.
pub fn prepare_traced(
    obs: &BenchObs,
    domain: Domain,
    n_sources: Option<usize>,
    seed: u64,
) -> Result<udi_eval::harness::DomainEval, udi_core::UdiError> {
    match obs.sink() {
        Some(sink) => udi_eval::harness::prepare_observed(domain, n_sources, seed, sink),
        None => udi_eval::harness::prepare(domain, n_sources, seed),
    }
}

/// The Example 2.1 ambiguity stress inventory: `phone` and `address` are
/// genuinely shared between home- and office- concepts, so probability
/// assignment (max-entropy, Algorithm 2) actually matters. Used by the
/// `exp_ambiguity` and `exp_ablation` extension experiments.
pub fn ambiguous_people_concepts() -> Vec<udi_datagen::ConceptSpec> {
    use udi_datagen::{ConceptSpec, PoolId, ValueKind};
    vec![
        ConceptSpec {
            key: "name",
            variants: &["name", "full name"],
            popularity: 1.0,
            value: ValueKind::PersonName,
        },
        ConceptSpec {
            key: "home phone",
            variants: &["hphone", "phone"],
            popularity: 0.9,
            value: ValueKind::Phone,
        },
        ConceptSpec {
            key: "office phone",
            variants: &["ophone", "phone"],
            popularity: 0.85,
            value: ValueKind::Phone,
        },
        ConceptSpec {
            key: "home address",
            variants: &["haddr", "address"],
            popularity: 0.85,
            value: ValueKind::StreetAddress,
        },
        ConceptSpec {
            key: "office address",
            variants: &["oaddr", "address"],
            popularity: 0.8,
            value: ValueKind::StreetAddress,
        },
        ConceptSpec {
            key: "email",
            variants: &["email", "e-mail"],
            popularity: 0.7,
            value: ValueKind::Email,
        },
        ConceptSpec {
            key: "organization",
            variants: &["organization", "company"],
            popularity: 0.8,
            value: ValueKind::FromPool(PoolId::Companies),
        },
    ]
}

/// Format a metrics triple the way the paper's tables do.
pub fn fmt_prf(m: udi_eval::Metrics) -> String {
    format!(
        "{:>9.3} {:>9.3} {:>9.3}",
        m.precision,
        m.recall,
        m.f_measure()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_counts_have_floor() {
        std::env::remove_var("UDI_SCALE");
        assert_eq!(sources_for(Domain::Car), 817);
        assert!(sources_for(Domain::People) >= 10);
    }

    #[test]
    fn fmt_prf_is_fixed_width() {
        let s = fmt_prf(udi_eval::Metrics {
            precision: 1.0,
            recall: 0.5,
        });
        assert_eq!(s.split_whitespace().count(), 3);
    }
}

//! Shared plumbing for the reproduction binaries (one per paper
//! table/figure) and the criterion benchmarks.
//!
//! Every binary accepts the environment variable `UDI_SCALE` — a fraction
//! in `(0, 1]` applied to the paper's Table 1 source counts — so the whole
//! suite can be smoke-tested quickly (`UDI_SCALE=0.1`) or run at full scale
//! (default). `UDI_SEED` overrides the corpus seed.

use udi_datagen::Domain;

/// The corpus scale factor from `UDI_SCALE` (default 1.0 = paper scale).
pub fn scale() -> f64 {
    std::env::var("UDI_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(1.0)
}

/// The corpus seed from `UDI_SEED` (default 2008, the venue year).
pub fn seed() -> u64 {
    std::env::var("UDI_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2008)
}

/// Scaled source count for a domain (at least 10 sources).
pub fn sources_for(domain: Domain) -> usize {
    let n = (domain.default_source_count() as f64 * scale()).round() as usize;
    n.max(10)
}

/// Print a header banner for an experiment binary.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!(
        "(scale={}, seed={}; set UDI_SCALE/UDI_SEED to override)",
        scale(),
        seed()
    );
    println!("{}", "=".repeat(72));
}

/// The Example 2.1 ambiguity stress inventory: `phone` and `address` are
/// genuinely shared between home- and office- concepts, so probability
/// assignment (max-entropy, Algorithm 2) actually matters. Used by the
/// `exp_ambiguity` and `exp_ablation` extension experiments.
pub fn ambiguous_people_concepts() -> Vec<udi_datagen::ConceptSpec> {
    use udi_datagen::{ConceptSpec, PoolId, ValueKind};
    vec![
        ConceptSpec {
            key: "name",
            variants: &["name", "full name"],
            popularity: 1.0,
            value: ValueKind::PersonName,
        },
        ConceptSpec {
            key: "home phone",
            variants: &["hphone", "phone"],
            popularity: 0.9,
            value: ValueKind::Phone,
        },
        ConceptSpec {
            key: "office phone",
            variants: &["ophone", "phone"],
            popularity: 0.85,
            value: ValueKind::Phone,
        },
        ConceptSpec {
            key: "home address",
            variants: &["haddr", "address"],
            popularity: 0.85,
            value: ValueKind::StreetAddress,
        },
        ConceptSpec {
            key: "office address",
            variants: &["oaddr", "address"],
            popularity: 0.8,
            value: ValueKind::StreetAddress,
        },
        ConceptSpec {
            key: "email",
            variants: &["email", "e-mail"],
            popularity: 0.7,
            value: ValueKind::Email,
        },
        ConceptSpec {
            key: "organization",
            variants: &["organization", "company"],
            popularity: 0.8,
            value: ValueKind::FromPool(PoolId::Companies),
        },
    ]
}

/// Format a metrics triple the way the paper's tables do.
pub fn fmt_prf(m: udi_eval::Metrics) -> String {
    format!(
        "{:>9.3} {:>9.3} {:>9.3}",
        m.precision,
        m.recall,
        m.f_measure()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_counts_have_floor() {
        std::env::remove_var("UDI_SCALE");
        assert_eq!(sources_for(Domain::Car), 817);
        assert!(sources_for(Domain::People) >= 10);
    }

    #[test]
    fn fmt_prf_is_fixed_width() {
        let s = fmt_prf(udi_eval::Metrics {
            precision: 1.0,
            recall: 0.5,
        });
        assert_eq!(s.split_whitespace().count(), 3);
    }
}

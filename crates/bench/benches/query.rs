//! Criterion benchmark behind the §7.6 query-latency claim ("with 817 data
//! sources, UDI answered queries in no more than 2 seconds"): per-query
//! answering cost over the consolidated schema, plus the Theorem 6.2
//! equivalence path for comparison.

use criterion::{criterion_group, criterion_main, Criterion};

use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{generate, Domain, GenConfig};
use udi_eval::generate_workload;

fn bench_query(c: &mut Criterion) {
    // One-core CI box: keep measurement windows tight.

    let gen = generate(
        Domain::Car,
        &GenConfig {
            n_sources: Some(200),
            seed: 2008,
            ..GenConfig::default()
        },
    );
    let udi = UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
    let queries = generate_workload(&gen, 10, 2009);

    c.bench_function("answer_consolidated_car_200", |b| {
        b.iter(|| {
            for q in &queries {
                criterion::black_box(udi.answer(q));
            }
        });
    });

    c.bench_function("answer_pmed_car_200", |b| {
        b.iter(|| {
            for q in &queries {
                criterion::black_box(udi.answer_with_pmed(q));
            }
        });
    });

    c.bench_function("answer_top_mapping_car_200", |b| {
        b.iter(|| {
            for q in &queries {
                criterion::black_box(udi.answer_top_mapping(q));
            }
        });
    });
}

criterion_group!(benches, bench_query);
criterion_main!(benches);

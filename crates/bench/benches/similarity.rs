//! Criterion microbenchmarks for the pairwise attribute matcher (the inner
//! loop of similarity-graph construction and correspondence generation).

use criterion::{criterion_group, criterion_main, Criterion};

use udi_similarity::{
    jaccard_ngram, jaro_winkler, normalized_levenshtein, AttributeSimilarity, Similarity,
};

const PAIRS: &[(&str, &str)] = &[
    ("phone", "phone-no"),
    ("author(s)", "authors"),
    ("link to pubmed", "pubmed"),
    ("home address", "work address"),
    ("instructor", "lecturer"),
    ("issue", "issn"),
    ("pages/rec. no", "pages"),
    ("release year", "year"),
];

fn bench_measures(c: &mut Criterion) {
    c.bench_function("jaro_winkler_8pairs", |b| {
        b.iter(|| PAIRS.iter().map(|(x, y)| jaro_winkler(x, y)).sum::<f64>());
    });
    c.bench_function("levenshtein_8pairs", |b| {
        b.iter(|| {
            PAIRS
                .iter()
                .map(|(x, y)| normalized_levenshtein(x, y))
                .sum::<f64>()
        });
    });
    c.bench_function("trigram_jaccard_8pairs", |b| {
        b.iter(|| {
            PAIRS
                .iter()
                .map(|(x, y)| jaccard_ngram(x, y, 3))
                .sum::<f64>()
        });
    });
    let full = AttributeSimilarity::default();
    c.bench_function("attribute_similarity_8pairs", |b| {
        b.iter(|| {
            PAIRS
                .iter()
                .map(|(x, y)| full.similarity(x, y))
                .sum::<f64>()
        });
    });
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);

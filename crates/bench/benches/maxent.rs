//! Criterion microbenchmarks for the maximum-entropy machinery — the paper
//! singles out entropy maximization as "the most time-consuming step in
//! system setup".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use udi_maxent::{
    enumerate_matchings, solve_correspondences, solve_max_entropy, Correspondence,
    CorrespondenceSet, MaxEntConfig,
};

/// A k×k complete bipartite correspondence set with mildly varied weights.
fn complete(k: usize) -> CorrespondenceSet {
    let mut raw = Vec::new();
    for i in 0..k {
        for j in 0..k {
            let w = if i == j {
                0.9
            } else {
                0.1 + 0.01 * (i + j) as f64
            };
            raw.push(Correspondence::new(i, j, w));
        }
    }
    CorrespondenceSet::normalized(raw).expect("valid")
}

fn bench_enumerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_matchings");
    for &k in &[3usize, 4, 5] {
        let set = complete(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &set, |b, set| {
            b.iter(|| enumerate_matchings(set, 1_000_000).expect("under cap"));
        });
    }
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_entropy_solve");
    for &k in &[3usize, 4] {
        let set = complete(k);
        let matchings = enumerate_matchings(&set, 1_000_000).expect("under cap");
        let targets: Vec<f64> = set.correspondences().iter().map(|c| c.weight).collect();
        group.bench_function(BenchmarkId::from_parameter(k), |b| {
            b.iter(|| {
                solve_max_entropy(set.len(), &matchings, &targets, &MaxEntConfig::default())
                    .expect("converges")
            });
        });
    }
    group.finish();
}

fn bench_grouped(c: &mut Criterion) {
    // Ten independent 2x2 groups: the group decomposition must make this
    // trivial instead of enumerating a 4^10 joint space.
    let mut raw = Vec::new();
    for g in 0..10 {
        let base = g * 2;
        raw.push(Correspondence::new(base, base, 0.8));
        raw.push(Correspondence::new(base + 1, base + 1, 0.6));
    }
    let set = CorrespondenceSet::normalized(raw).expect("valid");
    c.bench_function("grouped_10x_independent_pairs", |b| {
        b.iter(|| solve_correspondences(&set, &MaxEntConfig::default()).expect("solves"));
    });
}

criterion_group!(benches, bench_enumerate, bench_solver, bench_grouped);
criterion_main!(benches);

//! Criterion benchmark behind Figure 7: end-to-end setup cost as the number
//! of Car-domain sources grows. The paper's claim is *linear* scaling; the
//! per-size throughput here should stay roughly constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{generate, Domain, GenConfig};

fn bench_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("setup_car");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.warm_up_time(std::time::Duration::from_secs(2));
    for &n in &[50usize, 100, 200] {
        let gen = generate(
            Domain::Car,
            &GenConfig {
                n_sources: Some(n),
                seed: 2008,
                ..GenConfig::default()
            },
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &gen, |b, gen| {
            b.iter(|| UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup"));
        });
    }
    group.finish();
}

fn bench_setup_stages(c: &mut Criterion) {
    // Isolate the p-med-schema stage, which must stay negligible next to
    // p-mapping generation (the paper's observation).
    let gen = generate(
        Domain::Bib,
        &GenConfig {
            n_sources: Some(100),
            seed: 2008,
            ..GenConfig::default()
        },
    );
    let mut set = udi_schema::SchemaSet::default();
    for (_, t) in gen.catalog.iter_sources() {
        set.add_source(t.name(), t.attributes().iter().map(String::as_str));
    }
    let sim = udi_similarity::AttributeSimilarity::default();
    let params = udi_schema::UdiParams::default();
    c.bench_function("p_med_schema_bib_100", |b| {
        b.iter(|| udi_schema::build_p_med_schema(&set, &sim, &params).expect("build"));
    });
}

criterion_group!(benches, bench_setup, bench_setup_stages);
criterion_main!(benches);

//! Core model types: vocabulary, source schemas, mediated schemas,
//! p-med-schemas, mappings and p-mappings.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

/// Identifier of a distinct attribute *name* across all sources.
///
/// The paper treats attributes by name: `f(a)` counts the sources whose
/// schema contains the name `a`, and mediated attributes are sets of names.
/// Two sources using the same label therefore share one `AttrId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u32);

/// Bidirectional attribute-name registry.
///
/// Serializes as the bare name list; the reverse index is rebuilt on
/// deserialization so a loaded vocabulary behaves identically.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<String>", into = "Vec<String>")]
pub struct Vocabulary {
    names: Vec<String>,
    // udi-audit: allow(deterministic-iteration, "reverse index queried by name; iteration always goes through `names`")
    index: HashMap<String, AttrId>,
}

impl From<Vec<String>> for Vocabulary {
    fn from(names: Vec<String>) -> Vocabulary {
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), AttrId(i as u32)))
            .collect();
        Vocabulary { names, index }
    }
}

impl From<Vocabulary> for Vec<String> {
    fn from(v: Vocabulary) -> Vec<String> {
        v.names
    }
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Intern a name, returning its stable id.
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = AttrId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn id_of(&self, name: &str) -> Option<AttrId> {
        self.index.get(name).copied()
    }

    /// The name behind an id. A foreign id reads as the empty string —
    /// ids only come from this vocabulary, so the fallback is inert.
    pub fn name(&self, id: AttrId) -> &str {
        self.names
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate all `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (AttrId(i as u32), n.as_str()))
    }
}

/// One source schema: a name plus its attribute ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceSchema {
    /// Source name (table name).
    pub name: String,
    /// Attribute ids in schema order.
    pub attrs: Vec<AttrId>,
}

/// A set of source schemas sharing one vocabulary — the input to the whole
/// setup pipeline.
///
/// Serializes as `{vocab, sources}`; the per-attribute source counts are
/// derived state, rebuilt on deserialization.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "SchemaSetRepr", into = "SchemaSetRepr")]
pub struct SchemaSet {
    vocab: Vocabulary,
    sources: Vec<SourceSchema>,
    /// `counts[a]` = number of sources whose schema contains `AttrId(a)`,
    /// maintained incrementally so `frequency` is O(1) and
    /// `frequent_attributes` is O(|vocab|) instead of O(|vocab| × |sources|
    /// × arity) — at 100k sources the old scan dominated every refresh.
    counts: Vec<usize>,
}

/// Wire format of [`SchemaSet`] (the pre-counts layout).
#[derive(Serialize, Deserialize)]
#[serde(rename = "SchemaSet")]
struct SchemaSetRepr {
    vocab: Vocabulary,
    sources: Vec<SourceSchema>,
}

impl From<SchemaSetRepr> for SchemaSet {
    fn from(repr: SchemaSetRepr) -> SchemaSet {
        let mut counts = vec![0usize; repr.vocab.len()];
        for s in &repr.sources {
            for a in distinct_attrs(s) {
                if let Some(c) = counts.get_mut(a.0 as usize) {
                    *c += 1;
                }
            }
        }
        SchemaSet {
            vocab: repr.vocab,
            sources: repr.sources,
            counts,
        }
    }
}

impl From<SchemaSet> for SchemaSetRepr {
    fn from(set: SchemaSet) -> SchemaSetRepr {
        SchemaSetRepr {
            vocab: set.vocab,
            sources: set.sources,
        }
    }
}

/// The distinct attribute ids of one source schema, in first-occurrence
/// order. Frequency counts a source once per attribute *name* no matter how
/// often the schema repeats it.
fn distinct_attrs(s: &SourceSchema) -> impl Iterator<Item = AttrId> + '_ {
    let mut seen = BTreeSet::new();
    s.attrs.iter().copied().filter(move |&a| seen.insert(a))
}

impl SchemaSet {
    /// Build from `(source name, attribute names)` pairs.
    pub fn from_sources<I, S, A>(sources: I) -> SchemaSet
    where
        I: IntoIterator<Item = (S, Vec<A>)>,
        S: Into<String>,
        A: AsRef<str>,
    {
        let mut set = SchemaSet::default();
        for (name, attrs) in sources {
            set.add_source(name, attrs.iter().map(AsRef::as_ref));
        }
        set
    }

    /// Register one source schema.
    pub fn add_source<'a>(
        &mut self,
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = &'a str>,
    ) {
        let attrs: Vec<AttrId> = attrs.into_iter().map(|a| self.vocab.intern(a)).collect();
        let schema = SourceSchema {
            name: name.into(),
            attrs,
        };
        if self.counts.len() < self.vocab.len() {
            self.counts.resize(self.vocab.len(), 0);
        }
        for a in distinct_attrs(&schema) {
            if let Some(c) = self.counts.get_mut(a.0 as usize) {
                *c += 1;
            }
        }
        self.sources.push(schema);
    }

    /// Drop the source schema named `name`, returning whether it existed.
    ///
    /// The vocabulary is deliberately left intact: attribute ids are stable
    /// across removals, so downstream artifacts keyed by [`AttrId`] (similar-
    /// ity caches, mediated schemas, mappings) stay valid. Attributes no
    /// longer used by any source simply fall to frequency 0 and drop out of
    /// the frequent set on the next graph build.
    pub fn remove_source(&mut self, name: &str) -> bool {
        match self.sources.iter().position(|s| s.name == name) {
            Some(i) => {
                let schema = self.sources.remove(i);
                for a in distinct_attrs(&schema) {
                    if let Some(c) = self.counts.get_mut(a.0 as usize) {
                        *c = c.saturating_sub(1);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The source schemas in registration order.
    pub fn sources(&self) -> &[SourceSchema] {
        &self.sources
    }

    /// `f(a)`: fraction of sources whose schema contains `a`. O(1): served
    /// from the incrementally maintained per-attribute counts.
    pub fn frequency(&self, a: AttrId) -> f64 {
        if self.sources.is_empty() {
            return 0.0;
        }
        let c = self.counts.get(a.0 as usize).copied().unwrap_or(0);
        c as f64 / self.sources.len() as f64
    }

    /// Attribute ids whose frequency is at least `theta`, ascending.
    /// O(|vocab|): one pass over the maintained counts.
    pub fn frequent_attributes(&self, theta: f64) -> Vec<AttrId> {
        let n = self.sources.len();
        if n == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c as f64 / n as f64 >= theta)
            .map(|(i, _)| AttrId(i as u32))
            .collect()
    }
}

/// A deterministic mediated schema: a partition of (a subset of) the
/// attribute universe into disjoint clusters. Each cluster is one *mediated
/// attribute*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MediatedSchema {
    clusters: Vec<BTreeSet<AttrId>>,
}

impl MediatedSchema {
    /// Build from clusters; empty clusters are dropped and the result is
    /// canonicalized (clusters sorted by their smallest member) so equal
    /// partitions compare equal. Panics if clusters overlap.
    pub fn new(clusters: Vec<BTreeSet<AttrId>>) -> MediatedSchema {
        let mut clusters: Vec<BTreeSet<AttrId>> =
            clusters.into_iter().filter(|c| !c.is_empty()).collect();
        let mut seen = BTreeSet::new();
        for c in &clusters {
            for &a in c {
                assert!(seen.insert(a), "attribute {a:?} appears in two clusters");
            }
        }
        clusters.sort_by(|a, b| a.iter().next().cmp(&b.iter().next()));
        MediatedSchema { clusters }
    }

    /// Build from slices of ids (test/construction convenience).
    pub fn from_slices(clusters: &[&[AttrId]]) -> MediatedSchema {
        MediatedSchema::new(
            clusters
                .iter()
                .map(|c| c.iter().copied().collect())
                .collect(),
        )
    }

    /// The clusters (mediated attributes).
    pub fn clusters(&self) -> &[BTreeSet<AttrId>] {
        &self.clusters
    }

    /// Number of mediated attributes.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Index of the cluster containing `a`, if any.
    pub fn cluster_of(&self, a: AttrId) -> Option<usize> {
        self.clusters.iter().position(|c| c.contains(&a))
    }

    /// All attributes covered by the schema.
    pub fn attribute_set(&self) -> BTreeSet<AttrId> {
        self.clusters.iter().flatten().copied().collect()
    }

    /// Definition 4.1: consistent with a source iff no two of the source's
    /// attributes share a cluster.
    pub fn is_consistent_with(&self, source: &SourceSchema) -> bool {
        for c in &self.clusters {
            let mut hits = 0;
            for a in &source.attrs {
                if c.contains(a) {
                    hits += 1;
                    if hits > 1 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Human-readable rendering using a vocabulary.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        let parts: Vec<String> = self
            .clusters
            .iter()
            .map(|c| {
                let names: Vec<&str> = c.iter().map(|&a| vocab.name(a)).collect();
                format!("{{{}}}", names.join(", "))
            })
            .collect();
        format!("({})", parts.join(", "))
    }
}

/// A probabilistic mediated schema (Definition 3.1): mediated schemas with
/// probabilities summing to 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PMedSchema {
    schemas: Vec<(MediatedSchema, f64)>,
}

impl PMedSchema {
    /// Build from `(schema, probability)` pairs. Probabilities must be in
    /// `(0, 1]` and sum to 1 (±1e-6); schemas must be pairwise distinct.
    pub fn new(schemas: Vec<(MediatedSchema, f64)>) -> PMedSchema {
        assert!(
            !schemas.is_empty(),
            "a p-med-schema needs at least one schema"
        );
        let total: f64 = schemas.iter().map(|(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "probabilities sum to {total}, not 1"
        );
        for (i, (m, p)) in schemas.iter().enumerate() {
            assert!(*p > 0.0 && *p <= 1.0 + 1e-9, "probability {p} out of range");
            let dup = schemas
                .get(..i)
                .is_some_and(|head| head.iter().any(|(m2, _)| m2 == m));
            assert!(!dup, "duplicate mediated schema in p-med-schema");
        }
        PMedSchema { schemas }
    }

    /// The `(schema, probability)` pairs, highest probability first.
    pub fn schemas(&self) -> &[(MediatedSchema, f64)] {
        &self.schemas
    }

    /// Number of possible mediated schemas (always at least 1 — a
    /// p-med-schema cannot be empty, so there is no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether there is exactly one possible schema.
    pub fn is_deterministic(&self) -> bool {
        self.schemas.len() == 1
    }

    /// The most probable mediated schema. A p-med-schema is non-empty by
    /// construction; the fallback empty schema is unreachable in practice.
    pub fn top(&self) -> &MediatedSchema {
        // udi-audit: allow(shared-mutable-static, "write-once fallback schema; no observable mutation after init")
        static EMPTY: std::sync::OnceLock<MediatedSchema> = std::sync::OnceLock::new();
        match self.schemas.first() {
            Some((m, _)) => m,
            None => EMPTY.get_or_init(|| MediatedSchema::new(Vec::new())),
        }
    }
}

/// A (possibly one-to-many) schema mapping between one source and one
/// mediated schema: each source attribute maps to a set of mediated
/// attributes (cluster indices); each mediated attribute corresponds to at
/// most one source attribute.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Mapping {
    assignments: BTreeMap<AttrId, BTreeSet<usize>>,
}

impl Mapping {
    /// The empty mapping.
    pub fn empty() -> Mapping {
        Mapping {
            assignments: BTreeMap::new(),
        }
    }

    /// One-to-one mapping from `(source attr, mediated index)` pairs.
    /// Panics if a source attribute or mediated index repeats.
    pub fn one_to_one<I>(pairs: I) -> Mapping
    where
        I: IntoIterator<Item = (AttrId, usize)>,
    {
        let mut m = Mapping::empty();
        for (a, j) in pairs {
            m.insert(a, j);
        }
        m
    }

    /// Add a correspondence `(a → j)`, preserving the invariant that a
    /// mediated attribute has at most one source attribute.
    pub fn insert(&mut self, a: AttrId, j: usize) {
        assert!(
            self.source_of(j).is_none_or(|s| s == a),
            "mediated attribute {j} already corresponds to a different source attribute"
        );
        self.assignments.entry(a).or_default().insert(j);
    }

    /// The mediated attributes `a` maps to.
    pub fn targets_of(&self, a: AttrId) -> Option<&BTreeSet<usize>> {
        self.assignments.get(&a)
    }

    /// The unique source attribute corresponding to mediated attribute `j`.
    pub fn source_of(&self, j: usize) -> Option<AttrId> {
        self.assignments
            .iter()
            .find(|(_, targets)| targets.contains(&j))
            .map(|(&a, _)| a)
    }

    /// Iterate `(source attr, mediated index)` correspondences.
    pub fn correspondences(&self) -> impl Iterator<Item = (AttrId, usize)> + '_ {
        self.assignments
            .iter()
            .flat_map(|(&a, ts)| ts.iter().map(move |&j| (a, j)))
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.assignments.values().map(BTreeSet::len).sum()
    }

    /// Whether this is the empty mapping.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Whether every source attribute maps to exactly one mediated
    /// attribute (Definition 3.2's one-to-one case).
    pub fn is_one_to_one(&self) -> bool {
        self.assignments.values().all(|ts| ts.len() == 1)
    }
}

/// A probabilistic mapping (Definition 3.2): distinct mappings with
/// probabilities summing to 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PMapping {
    mappings: Vec<(Mapping, f64)>,
}

impl PMapping {
    /// Build from `(mapping, probability)` pairs; validates the
    /// Definition 3.2 side conditions.
    pub fn new(mappings: Vec<(Mapping, f64)>) -> PMapping {
        assert!(
            !mappings.is_empty(),
            "a p-mapping needs at least one mapping"
        );
        let total: f64 = mappings.iter().map(|(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "probabilities sum to {total}, not 1"
        );
        for (i, (m, p)) in mappings.iter().enumerate() {
            assert!(*p > 0.0 && *p <= 1.0 + 1e-9, "probability {p} out of range");
            let dup = mappings
                .get(..i)
                .is_some_and(|head| head.iter().any(|(m2, _)| m2 == m));
            assert!(!dup, "duplicate mapping");
        }
        PMapping { mappings }
    }

    /// The `(mapping, probability)` pairs.
    pub fn mappings(&self) -> &[(Mapping, f64)] {
        &self.mappings
    }

    /// Number of possible mappings (always at least 1 — a p-mapping cannot
    /// be empty, so there is no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// The single most probable mapping (ties broken by position).
    pub fn top_mapping(&self) -> &Mapping {
        let (m, _) = self
            .mappings
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            // udi-audit: allow(no-panic-in-lib, "PMapping::new requires at least one mapping; emptiness is unconstructible")
            .expect("non-empty by construction");
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<AttrId> {
        xs.iter().map(|&x| AttrId(x)).collect()
    }

    #[test]
    fn remove_source_keeps_vocabulary_stable() {
        let mut set =
            SchemaSet::from_sources([("s1", vec!["name", "phone"]), ("s2", vec!["name", "email"])]);
        let email = set.vocab().id_of("email").unwrap();
        assert!(set.remove_source("s2"));
        assert!(!set.remove_source("s2"), "already gone");
        assert_eq!(set.sources().len(), 1);
        // Ids survive; the orphaned attribute just drops to frequency 0.
        assert_eq!(set.vocab().id_of("email"), Some(email));
        assert_eq!(set.frequency(email), 0.0);
        assert!(!set.frequent_attributes(0.5).contains(&email));
    }

    #[test]
    fn vocabulary_interns_stably() {
        let mut v = Vocabulary::new();
        let a = v.intern("name");
        let b = v.intern("phone");
        assert_eq!(v.intern("name"), a);
        assert_ne!(a, b);
        assert_eq!(v.name(a), "name");
        assert_eq!(v.id_of("phone"), Some(b));
        assert_eq!(v.id_of("zzz"), None);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn vocabulary_serde_round_trip_rebuilds_index() {
        if serde_json::to_string(&Vocabulary::new()).is_err() {
            // Offline stub backend (see offline/README.md): nothing to test.
            return;
        }
        let mut v = Vocabulary::new();
        v.intern("name");
        v.intern("phone");
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, r#"["name","phone"]"#);
        let back: Vocabulary = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.id_of("phone"),
            Some(AttrId(1)),
            "index must be rebuilt"
        );
        assert_eq!(back.name(AttrId(0)), "name");
    }

    #[test]
    fn schema_set_frequencies() {
        let set = SchemaSet::from_sources([
            ("s1", vec!["name", "phone"]),
            ("s2", vec!["name", "addr"]),
            ("s3", vec!["name", "phone"]),
            ("s4", vec!["title"]),
        ]);
        let name = set.vocab().id_of("name").unwrap();
        let phone = set.vocab().id_of("phone").unwrap();
        assert_eq!(set.frequency(name), 0.75);
        assert_eq!(set.frequency(phone), 0.5);
        let freq = set.frequent_attributes(0.5);
        assert_eq!(freq, vec![name, phone]);
    }

    #[test]
    fn maintained_counts_track_mutations_and_duplicates() {
        let mut set = SchemaSet::default();
        // A schema repeating an attribute name still counts the source once.
        set.add_source("s1", ["name", "name", "phone"]);
        set.add_source("s2", ["name"]);
        let name = set.vocab().id_of("name").unwrap();
        let phone = set.vocab().id_of("phone").unwrap();
        assert_eq!(set.frequency(name), 1.0);
        assert_eq!(set.frequency(phone), 0.5);
        set.remove_source("s1");
        assert_eq!(set.frequency(name), 1.0, "s2 still has name");
        assert_eq!(set.frequency(phone), 0.0);
        assert_eq!(set.frequent_attributes(0.5), vec![name]);
        // Rehydration from the wire shape rebuilds the same counts.
        let back = SchemaSet::from(SchemaSetRepr::from(set.clone()));
        assert_eq!(back.frequency(name), set.frequency(name));
        assert_eq!(back.frequency(phone), set.frequency(phone));
    }

    #[test]
    fn mediated_schema_canonicalization() {
        let a = MediatedSchema::from_slices(&[&ids(&[2, 3]), &ids(&[0, 1])]);
        let b = MediatedSchema::from_slices(&[&ids(&[1, 0]), &ids(&[3, 2])]);
        assert_eq!(a, b);
        assert_eq!(a.cluster_of(AttrId(3)), a.cluster_of(AttrId(2)));
        assert_eq!(a.cluster_of(AttrId(9)), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn overlapping_clusters_rejected() {
        MediatedSchema::from_slices(&[&ids(&[0, 1]), &ids(&[1, 2])]);
    }

    #[test]
    fn consistency_definition_4_1() {
        // M groups attrs 0 and 1 together.
        let m = MediatedSchema::from_slices(&[&ids(&[0, 1]), &ids(&[2])]);
        let s_ok = SourceSchema {
            name: "a".into(),
            attrs: ids(&[0, 2]),
        };
        let s_bad = SourceSchema {
            name: "b".into(),
            attrs: ids(&[0, 1]),
        };
        assert!(m.is_consistent_with(&s_ok));
        assert!(!m.is_consistent_with(&s_bad));
    }

    #[test]
    fn p_med_schema_validation() {
        let m1 = MediatedSchema::from_slices(&[&ids(&[0, 1])]);
        let m2 = MediatedSchema::from_slices(&[&ids(&[0]), &ids(&[1])]);
        let p = PMedSchema::new(vec![(m1.clone(), 0.7), (m2, 0.3)]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_deterministic());
        assert_eq!(p.top(), &m1);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn p_med_schema_rejects_bad_sum() {
        let m1 = MediatedSchema::from_slices(&[&ids(&[0])]);
        PMedSchema::new(vec![(m1, 0.5)]);
    }

    #[test]
    fn mapping_one_to_one_and_inverse() {
        let m = Mapping::one_to_one([(AttrId(5), 0), (AttrId(7), 2)]);
        assert!(m.is_one_to_one());
        assert_eq!(m.source_of(0), Some(AttrId(5)));
        assert_eq!(m.source_of(1), None);
        assert_eq!(
            m.targets_of(AttrId(7))
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![2]
        );
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn mapping_one_to_many() {
        let mut m = Mapping::empty();
        m.insert(AttrId(1), 0);
        m.insert(AttrId(1), 3);
        assert!(!m.is_one_to_one());
        assert_eq!(m.len(), 2);
        let cs: Vec<(AttrId, usize)> = m.correspondences().collect();
        assert_eq!(cs, vec![(AttrId(1), 0), (AttrId(1), 3)]);
    }

    #[test]
    #[should_panic(expected = "already corresponds")]
    fn mapping_rejects_two_sources_for_one_mediated() {
        let mut m = Mapping::empty();
        m.insert(AttrId(1), 0);
        m.insert(AttrId(2), 0);
    }

    #[test]
    fn pmapping_top_mapping() {
        let a = Mapping::one_to_one([(AttrId(0), 0)]);
        let b = Mapping::empty();
        let pm = PMapping::new(vec![(a.clone(), 0.4), (b, 0.6)]);
        assert_eq!(pm.top_mapping(), &Mapping::empty());
        assert_eq!(pm.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate mapping")]
    fn pmapping_rejects_duplicates() {
        let a = Mapping::empty();
        PMapping::new(vec![(a.clone(), 0.5), (a, 0.5)]);
    }

    #[test]
    fn mediated_schema_display() {
        let mut v = Vocabulary::new();
        let n = v.intern("name");
        let p = v.intern("phone");
        let m = MediatedSchema::from_slices(&[&[n], &[p]]);
        assert_eq!(m.display(&v), "({name}, {phone})");
    }
}

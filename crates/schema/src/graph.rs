//! The weighted similarity graph over frequent attributes (Algorithm 1,
//! steps 1–5).

use udi_similarity::Similarity;

use crate::correspondence::PairSimilarity;
use crate::model::{AttrId, SchemaSet};
use crate::UdiParams;

/// Classification of a graph edge relative to τ ± ε.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Weight ≥ τ + ε: the two attributes are merged in every mediated
    /// schema.
    Certain,
    /// Weight in `[τ − ε, τ + ε)`: the merge is ambiguous; Algorithm 1
    /// branches on it.
    Uncertain,
}

/// One weighted edge between two frequent attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint.
    pub a: AttrId,
    /// Second endpoint.
    pub b: AttrId,
    /// Pairwise similarity weight.
    pub weight: f64,
    /// Certain vs uncertain.
    pub kind: EdgeKind,
}

/// The similarity graph: frequent attributes as nodes, thresholded
/// similarity edges classified as certain/uncertain.
#[derive(Debug, Clone)]
pub struct SimilarityGraph {
    /// Nodes (frequent attribute ids, ascending).
    pub nodes: Vec<AttrId>,
    /// Edges with weight ≥ τ − ε.
    pub edges: Vec<Edge>,
}

impl SimilarityGraph {
    /// The certain edges.
    pub fn certain_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(|e| e.kind == EdgeKind::Certain)
    }

    /// The uncertain edges.
    pub fn uncertain_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(|e| e.kind == EdgeKind::Uncertain)
    }
}

/// Build the similarity graph:
///
/// 1. keep attributes with frequency ≥ θ (steps 1–3);
/// 2. for every pair with `s(a, b) ≥ τ − ε`, add an edge (step 4);
/// 3. mark edges with weight < τ + ε as uncertain (step 5).
pub fn build_similarity_graph(
    set: &SchemaSet,
    sim: &dyn Similarity,
    params: &UdiParams,
) -> SimilarityGraph {
    graph_from_weights(set, params, |a, b| {
        sim.similarity(set.vocab().name(a), set.vocab().name(b))
    })
}

/// [`build_similarity_graph`], but weighted by an id-level
/// [`PairSimilarity`] instead of a name-level measure. The incremental
/// engine uses this so its persistent similarity cache (with
/// feedback-overridden entries) flows into graph construction unchanged.
pub fn build_similarity_graph_via(
    set: &SchemaSet,
    matrix: &dyn PairSimilarity,
    params: &UdiParams,
) -> SimilarityGraph {
    graph_from_weights(set, params, |a, b| matrix.pair(a, b))
}

/// Shared core: frequency-filter nodes, threshold and classify edges.
fn graph_from_weights(
    set: &SchemaSet,
    params: &UdiParams,
    weight: impl Fn(AttrId, AttrId) -> f64,
) -> SimilarityGraph {
    let nodes = set.frequent_attributes(params.theta);
    let mut edges = Vec::new();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in nodes.get(i + 1..).unwrap_or(&[]) {
            let w = weight(a, b);
            if w >= params.tau - params.epsilon {
                let kind = if w >= params.tau + params.epsilon {
                    EdgeKind::Certain
                } else {
                    EdgeKind::Uncertain
                };
                edges.push(Edge {
                    a,
                    b,
                    weight: w,
                    kind,
                });
            }
        }
    }
    SimilarityGraph { nodes, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SchemaSet;

    /// A test measure keyed on exact names so edge weights are controllable.
    fn fixture() -> (SchemaSet, impl Similarity) {
        let set = SchemaSet::from_sources([
            ("s1", vec!["name", "phone", "tel", "rare"]),
            ("s2", vec!["name", "phone", "tel"]),
            ("s3", vec!["name", "mobile"]),
        ]);
        let sim = |a: &str, b: &str| -> f64 {
            let key = |x: &str, y: &str| (x.min(y).to_owned(), x.max(y).to_owned());
            let (x, y) = key(a, b);
            match (x.as_str(), y.as_str()) {
                ("phone", "tel") => 0.90,    // certain
                ("mobile", "phone") => 0.86, // uncertain (in [0.83, 0.87))
                ("mobile", "tel") => 0.50,
                _ => 0.0,
            }
        };
        (set, sim)
    }

    #[test]
    fn frequency_filter_excludes_rare_attributes() {
        let (set, sim) = fixture();
        let params = UdiParams {
            theta: 0.5,
            ..UdiParams::default()
        };
        let g = build_similarity_graph(&set, &sim, &params);
        let rare = set.vocab().id_of("rare").unwrap();
        assert!(!g.nodes.contains(&rare));
        // name, phone, tel are in >= 2/3 of sources; mobile only 1/3.
        assert_eq!(g.nodes.len(), 3);
    }

    #[test]
    fn edges_are_classified_by_tau_epsilon() {
        let (set, sim) = fixture();
        let params = UdiParams {
            theta: 0.0,
            ..UdiParams::default()
        };
        let g = build_similarity_graph(&set, &sim, &params);
        assert_eq!(g.certain_edges().count(), 1);
        assert_eq!(g.uncertain_edges().count(), 1);
        let certain = g.certain_edges().next().unwrap();
        assert_eq!(certain.weight, 0.90);
        let uncertain = g.uncertain_edges().next().unwrap();
        assert_eq!(uncertain.weight, 0.86);
    }

    #[test]
    fn below_band_edges_are_dropped() {
        let (set, sim) = fixture();
        let params = UdiParams {
            theta: 0.0,
            ..UdiParams::default()
        };
        let g = build_similarity_graph(&set, &sim, &params);
        // mobile-tel at 0.50 never appears.
        assert!(g.edges.iter().all(|e| e.weight >= 0.83));
    }

    #[test]
    fn exact_boundary_edges() {
        let set = SchemaSet::from_sources([("s1", vec!["a", "b", "c"])]);
        let sim = |x: &str, y: &str| -> f64 {
            match (x.min(y), x.max(y)) {
                ("a", "b") => 0.87, // exactly tau + eps → certain
                ("a", "c") => 0.83, // exactly tau - eps → uncertain
                _ => 0.0,
            }
        };
        let params = UdiParams {
            theta: 0.0,
            ..UdiParams::default()
        };
        let g = build_similarity_graph(&set, &sim, &params);
        let ab = g.edges.iter().find(|e| e.weight == 0.87).unwrap();
        assert_eq!(ab.kind, EdgeKind::Certain);
        let ac = g.edges.iter().find(|e| e.weight == 0.83).unwrap();
        assert_eq!(ac.kind, EdgeKind::Uncertain);
    }

    #[test]
    fn empty_schema_set_gives_empty_graph() {
        let set = SchemaSet::default();
        let g = build_similarity_graph(&set, &(|_: &str, _: &str| 1.0), &UdiParams::default());
        assert!(g.nodes.is_empty());
        assert!(g.edges.is_empty());
    }
}

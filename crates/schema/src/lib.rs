#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Probabilistic mediated schemas and probabilistic schema mappings — the
//! core contribution of the SIGMOD'08 paper (Sections 3–6).
//!
//! The pipeline this crate implements:
//!
//! 1. **Model** ([`model`]): attribute vocabulary, source schemas, mediated
//!    schemas as disjoint clusterings of source attributes, p-med-schemas
//!    (Definition 3.1), one-to-one and one-to-many mappings, p-mappings
//!    (Definition 3.2).
//! 2. **Similarity graph** ([`graph`]): frequency-filter the attribute
//!    universe (threshold θ), connect frequent attributes whose pairwise
//!    similarity clears τ−ε, and classify edges as *certain* (≥ τ+ε) or
//!    *uncertain* (within the ε error bar) — Algorithm 1, steps 1–5.
//! 3. **Mediated-schema generation** ([`med_schema`]): enumerate the
//!    mediated schemas induced by omitting subsets of uncertain edges
//!    (Algorithm 1, steps 6–8) and assign each a probability proportional to
//!    the number of source schemas it is *consistent* with (Definition 4.1,
//!    Algorithm 2).
//! 4. **Correspondences & p-mappings** ([`correspondence`], [`pmapping`]):
//!    weighted correspondences `p_{i,j} = Σ_{a∈A_j} s(a_i, a)`, Theorem 5.2
//!    normalization, and the maximum-entropy p-mapping via `udi-maxent`.
//! 5. **Consolidation** ([`consolidate`]): collapse the p-med-schema into
//!    one deterministic mediated schema (the coarsest common refinement,
//!    Algorithm 3) and rewrite the p-mappings against it (one-to-many),
//!    preserving all query answers (Theorem 6.2).
//!
//! # Quickstart
//!
//! ```
//! use udi_schema::{SchemaSet, UdiParams, build_p_med_schema};
//! use udi_similarity::AttributeSimilarity;
//!
//! let set = SchemaSet::from_sources([
//!     ("s1", vec!["name", "phone", "address"]),
//!     ("s2", vec!["name", "phone-no", "addr"]),
//!     ("s3", vec!["name", "phone", "address"]),
//! ]);
//! let params = UdiParams::default();
//! let pmed = build_p_med_schema(&set, &AttributeSimilarity::default(), &params).unwrap();
//! assert!(!pmed.schemas().is_empty());
//! ```

pub mod consolidate;
pub mod correspondence;
pub mod float;
pub mod graph;
pub mod med_schema;
pub mod model;
pub mod pmapping;

pub use consolidate::{consolidate_pmappings, consolidate_schemas, Consolidator};
pub use correspondence::{
    weighted_correspondences, FrozenMatrix, PairSimilarity, SimilarityMatrix,
};
pub use graph::{
    build_similarity_graph, build_similarity_graph_via, Edge, EdgeKind, SimilarityGraph,
};
pub use med_schema::{assign_probabilities, build_p_med_schema, enumerate_mediated_schemas};
pub use model::{
    AttrId, Mapping, MediatedSchema, PMapping, PMedSchema, SchemaSet, SourceSchema, Vocabulary,
};
pub use pmapping::{generate_pmapping, generate_pmapping_cached};

pub use udi_maxent::{MaxEntError, SolveCache};

/// Tunable parameters of the UDI setup pipeline, defaulting to the values of
/// §7.1 of the paper ("we set the pairwise similarity threshold for creating
/// the mediated schema to 0.85, the error bar for uncertain edges to 0.02,
/// the frequency threshold ... to 10%, and the correspondence threshold to
/// 0.85").
#[derive(Debug, Clone)]
pub struct UdiParams {
    /// Frequency threshold θ: attributes must appear in at least this
    /// fraction of sources to enter the mediated schema.
    pub theta: f64,
    /// Edge-weight threshold τ for the similarity graph.
    pub tau: f64,
    /// Error bar ε: edges with weight in `[τ−ε, τ+ε)` are *uncertain*.
    pub epsilon: f64,
    /// Threshold below which a weighted correspondence is zeroed.
    pub corr_threshold: f64,
    /// Floor applied to each pairwise similarity term before it enters the
    /// correspondence sum `p_{i,j} = Σ_{a∈A_j} s(a_i, a)`. Keeps a pile of
    /// individually weak (clearly non-matching) terms from accumulating
    /// into a spurious correspondence; the paper achieves the same effect
    /// by choosing a high correspondence threshold. Defaults to τ − ε: a
    /// pair too weak to be a graph edge contributes nothing.
    pub pair_floor: f64,
    /// Hard cap on the number of uncertain edges expanded by Algorithm 1
    /// (the enumeration is exponential in this number). Excess edges —
    /// those least ambiguous, i.e. with weight farthest from τ — are
    /// resolved deterministically: kept as certain if at or above τ,
    /// dropped otherwise.
    pub max_uncertain_edges: usize,
    /// Cap on explicit mappings per p-mapping (enumeration and product
    /// expansion); exceeding it is the state explosion the paper reports
    /// for `UnionAll` on the Bib domain.
    pub mapping_cap: usize,
    /// Maximum-entropy solver settings.
    pub maxent: udi_maxent::MaxEntConfig,
}

impl Default for UdiParams {
    fn default() -> Self {
        UdiParams {
            theta: 0.10,
            tau: 0.85,
            epsilon: 0.02,
            corr_threshold: 0.85,
            pair_floor: 0.83,
            max_uncertain_edges: 12,
            mapping_cap: 20_000,
            maxent: udi_maxent::MaxEntConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = UdiParams::default();
        assert_eq!(p.theta, 0.10);
        assert_eq!(p.tau, 0.85);
        assert_eq!(p.epsilon, 0.02);
        assert_eq!(p.corr_threshold, 0.85);
    }
}

//! Weighted correspondences between a source schema and a mediated schema
//! (§5.1).

use std::collections::HashMap;

use udi_similarity::Similarity;

use crate::model::{AttrId, MediatedSchema, SourceSchema, Vocabulary};
use crate::UdiParams;

/// Memoized pairwise attribute-name similarity.
///
/// Setup computes the same name pair similarity many times (every source ×
/// every candidate mediated schema touches the same frequent attributes);
/// memoization keeps the pipeline linear in practice. The cache is
/// mutex-guarded so the matrix can be shared across the worker threads of
/// parallel p-mapping generation (the measure must be `Sync`; all built-in
/// measures are).
pub struct SimilarityMatrix<'a> {
    vocab: &'a Vocabulary,
    sim: &'a (dyn Similarity + Sync),
    // udi-audit: allow(deterministic-iteration, "memo queried by normalized pair key; never iterated")
    cache: std::sync::Mutex<HashMap<(AttrId, AttrId), f64>>,
}

/// A similarity value is plain data: a poisoned cache mutex only means
/// another thread panicked mid-insert, and the map is still a valid memo —
/// recover it instead of propagating the panic.
fn recover<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<'a> SimilarityMatrix<'a> {
    /// Wrap a similarity measure over a vocabulary.
    pub fn new(vocab: &'a Vocabulary, sim: &'a (dyn Similarity + Sync)) -> SimilarityMatrix<'a> {
        SimilarityMatrix {
            vocab,
            sim,
            cache: Default::default(),
        }
    }

    /// Memoized `s(a, b)`; symmetric key so each unordered pair is computed
    /// once. Identity is served without a measure call.
    ///
    /// Named `score` (not `get`) on purpose: this method takes the memo
    /// mutex, and the call graph's method-name over-approximation would
    /// alias a `get` spelling with every lock-free `.get(…)` on the
    /// serving layer's certified read path.
    pub fn score(&self, a: AttrId, b: AttrId) -> f64 {
        if a == b {
            return 1.0;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&w) = recover(self.cache.lock()).get(&key) {
            return w;
        }
        let w = self
            .sim
            .similarity(self.vocab.name(key.0), self.vocab.name(key.1));
        recover(self.cache.lock()).insert(key, w);
        w
    }

    /// Number of memoized pairs (for diagnostics).
    pub fn cached_pairs(&self) -> usize {
        recover(self.cache.lock()).len()
    }

    /// Precompute every `(row, col)` pair into an immutable, lock-free
    /// matrix. Correspondence generation only ever queries (source
    /// attribute, cluster member) pairs, and both sides are small, so
    /// freezing up front removes all locking from the hot path — the
    /// difference between parallel p-mapping generation scaling and
    /// serializing on the cache mutex.
    pub fn freeze(&self, rows: &[AttrId], cols: &[AttrId]) -> FrozenMatrix {
        // udi-audit: allow(deterministic-iteration, "populated here, then lookup-only inside FrozenMatrix")
        let mut map = HashMap::with_capacity(rows.len() * cols.len());
        for &r in rows {
            for &c in cols {
                if r == c {
                    continue;
                }
                let key = (r.min(c), r.max(c));
                map.entry(key).or_insert_with(|| self.score(r, c));
            }
        }
        FrozenMatrix { map }
    }
}

/// Immutable pairwise similarity lookup (see [`SimilarityMatrix::freeze`]).
/// Pairs outside the frozen set score 0 — freeze over every pair the
/// pipeline can query.
pub struct FrozenMatrix {
    // udi-audit: allow(deterministic-iteration, "lock-free hot-path lookup by normalized pair key; entries() order never escapes")
    map: HashMap<(AttrId, AttrId), f64>,
}

impl FrozenMatrix {
    /// Rebuild a frozen matrix from previously exported entries (see
    /// [`FrozenMatrix::entries`]). Keys are normalized to `(min, max)` so the
    /// source of the entries does not have to care about pair order.
    pub fn from_entries(
        entries: impl IntoIterator<Item = ((AttrId, AttrId), f64)>,
    ) -> FrozenMatrix {
        let map = entries
            .into_iter()
            .map(|((a, b), w)| ((a.min(b), a.max(b)), w))
            .collect();
        FrozenMatrix { map }
    }

    /// Every memoized `((a, b), weight)` pair, `a < b`. The incremental
    /// engine uses this to persist the similarity cache across refreshes.
    pub fn entries(&self) -> impl Iterator<Item = ((AttrId, AttrId), f64)> + '_ {
        self.map.iter().map(|(&k, &w)| (k, w))
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pair is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Read access to pairwise attribute similarities, shared by the lazy
/// (mutex-cached) and frozen (lock-free) matrices.
pub trait PairSimilarity {
    /// `s(a, b)`, with `s(a, a) = 1`.
    fn pair(&self, a: AttrId, b: AttrId) -> f64;
}

impl PairSimilarity for SimilarityMatrix<'_> {
    fn pair(&self, a: AttrId, b: AttrId) -> f64 {
        self.score(a, b)
    }
}

impl PairSimilarity for FrozenMatrix {
    fn pair(&self, a: AttrId, b: AttrId) -> f64 {
        if a == b {
            return 1.0;
        }
        let key = (a.min(b), a.max(b));
        self.map.get(&key).copied().unwrap_or(0.0)
    }
}

/// Compute the thresholded weighted correspondences between `source` and
/// `med` (§5.1):
///
/// `p_{i,j} = Σ_{a ∈ A_j} s(a_i, a)`, with each pairwise term floored at
/// `params.pair_floor` (terms below the floor contribute 0) and the total
/// zeroed below `params.corr_threshold`.
///
/// Returned correspondences use `source`-local indices (`source = position
/// of a_i in the source schema`, `target = cluster index in med`) as
/// `udi-maxent` expects; weights are **raw** (normalize through
/// [`udi_maxent::CorrespondenceSet::normalized`]).
pub fn weighted_correspondences(
    source: &SourceSchema,
    med: &MediatedSchema,
    matrix: &dyn PairSimilarity,
    params: &UdiParams,
) -> Vec<udi_maxent::Correspondence> {
    let mut out = Vec::new();
    for (i, &ai) in source.attrs.iter().enumerate() {
        for (j, cluster) in med.clusters().iter().enumerate() {
            let mut w = 0.0;
            for &a in cluster {
                let s = matrix.pair(ai, a);
                if s >= params.pair_floor {
                    w += s;
                }
            }
            if w >= params.corr_threshold {
                out.push(udi_maxent::Correspondence::new(i, j, w));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SchemaSet;

    fn fixture() -> (SchemaSet, UdiParams) {
        let set = SchemaSet::from_sources([
            ("med-donor", vec!["phone", "hPhone", "oPhone", "name"]),
            ("src", vec!["telephone", "name"]),
        ]);
        (
            set,
            UdiParams {
                theta: 0.0,
                ..UdiParams::default()
            },
        )
    }

    #[test]
    fn matrix_memoizes_and_is_symmetric() {
        let (set, _) = fixture();
        let sim = udi_similarity::AttributeSimilarity::default();
        let m = SimilarityMatrix::new(set.vocab(), &sim);
        let a = set.vocab().id_of("phone").unwrap();
        let b = set.vocab().id_of("hPhone").unwrap();
        let w1 = m.score(a, b);
        let w2 = m.score(b, a);
        assert_eq!(w1, w2);
        assert_eq!(m.cached_pairs(), 1);
        assert_eq!(m.score(a, a), 1.0);
        assert_eq!(m.cached_pairs(), 1, "identity is not cached");
    }

    #[test]
    fn own_cluster_membership_dominates() {
        let (set, params) = fixture();
        let phone = set.vocab().id_of("phone").unwrap();
        let h = set.vocab().id_of("hPhone").unwrap();
        let name = set.vocab().id_of("name").unwrap();
        let med = MediatedSchema::from_slices(&[&[phone, h], &[name]]);
        let sim = udi_similarity::AttributeSimilarity::default();
        let matrix = SimilarityMatrix::new(set.vocab(), &sim);
        // The source here is the donor itself: attr `phone` should map to
        // its own cluster with weight ≥ 1 (contains s(phone,phone)=1).
        let src = &set.sources()[0];
        let corrs = weighted_correspondences(src, &med, &matrix, &params);
        let c = corrs
            .iter()
            .find(|c| c.source == 0 && c.target == 0)
            .expect("phone → {phone, hPhone}");
        assert!(c.weight >= 1.0);
    }

    #[test]
    fn threshold_suppresses_weak_correspondences() {
        let (set, params) = fixture();
        let phone = set.vocab().id_of("phone").unwrap();
        let name = set.vocab().id_of("name").unwrap();
        let med = MediatedSchema::from_slices(&[&[phone], &[name]]);
        let sim = udi_similarity::AttributeSimilarity::default();
        let matrix = SimilarityMatrix::new(set.vocab(), &sim);
        let src = &set.sources()[0];
        let corrs = weighted_correspondences(src, &med, &matrix, &params);
        // `name` (source idx 3) must not correspond to the phone cluster.
        assert!(!corrs.iter().any(|c| c.source == 3 && c.target == 0));
        // And must correspond to its own cluster.
        assert!(corrs.iter().any(|c| c.source == 3 && c.target == 1));
    }

    #[test]
    fn pair_floor_blocks_weak_term_accumulation() {
        // Cluster of 3 attributes each 0.5-similar to `x`: without the
        // floor the sum 1.5 would clear the 0.85 threshold spuriously.
        let set = SchemaSet::from_sources([("s", vec!["x", "p1", "p2", "p3"])]);
        let x = set.vocab().id_of("x").unwrap();
        let p: Vec<AttrId> = ["p1", "p2", "p3"]
            .iter()
            .map(|n| set.vocab().id_of(n).unwrap())
            .collect();
        let med = MediatedSchema::from_slices(&[&p, &[x]]);
        let sim = |a: &str, b: &str| -> f64 {
            if a == b {
                1.0
            } else if a == "x" || b == "x" {
                0.5
            } else {
                0.9
            }
        };
        let matrix = SimilarityMatrix::new(set.vocab(), &sim);
        let src = &set.sources()[0];
        let params = UdiParams {
            theta: 0.0,
            ..UdiParams::default()
        };
        let corrs = weighted_correspondences(src, &med, &matrix, &params);
        let p_cluster = med.cluster_of(p[0]).unwrap();
        assert!(
            !corrs.iter().any(|c| c.source == 0 && c.target == p_cluster),
            "x must not correspond to the p-cluster"
        );
    }

    #[test]
    fn correspondences_use_local_indices() {
        let (set, params) = fixture();
        let phone = set.vocab().id_of("phone").unwrap();
        let name = set.vocab().id_of("name").unwrap();
        let med = MediatedSchema::from_slices(&[&[phone], &[name]]);
        let sim = udi_similarity::AttributeSimilarity::default();
        let matrix = SimilarityMatrix::new(set.vocab(), &sim);
        // src has attrs [telephone, name]: name is local index 1.
        let src = &set.sources()[1];
        let corrs = weighted_correspondences(src, &med, &matrix, &params);
        assert!(corrs.iter().any(|c| c.source == 1 && c.target == 1));
        assert!(corrs.iter().all(|c| c.source < 2 && c.target < 2));
    }
}

//! End-to-end p-mapping generation for one (source, mediated schema) pair
//! (§5.2).

use udi_maxent::{solve_correspondences_cached, CorrespondenceSet, MaxEntError, SolveCache};

use crate::correspondence::{weighted_correspondences, PairSimilarity};
use crate::model::{Mapping, MediatedSchema, PMapping, SourceSchema};
use crate::UdiParams;

/// Generate the maximum-entropy p-mapping between `source` and `med`:
///
/// 1. weighted correspondences (§5.1), thresholded;
/// 2. Theorem 5.2 normalization so a consistent p-mapping exists;
/// 3. one-to-one mapping enumeration and per-group entropy maximization;
/// 4. expansion of the group product into an explicit [`PMapping`].
///
/// Fails with [`MaxEntError::Explosion`] when the number of mappings exceeds
/// `params.mapping_cap` — with the paper's thresholds this does not happen
/// for UDI proper, but it does for the `UnionAll` baseline on Bib-sized
/// schemas (the OOM the paper reports).
pub fn generate_pmapping(
    source: &SourceSchema,
    med: &MediatedSchema,
    matrix: &dyn PairSimilarity,
    params: &UdiParams,
) -> Result<PMapping, MaxEntError> {
    generate_pmapping_cached(source, med, matrix, params, None)
}

/// [`generate_pmapping`] with an optional [`SolveCache`] memoizing the
/// per-group max-entropy solves across calls. Results are bit-identical to
/// the uncached path; only repeated work is skipped. The cache must be used
/// under a single set of solver parameters.
pub fn generate_pmapping_cached(
    source: &SourceSchema,
    med: &MediatedSchema,
    matrix: &dyn PairSimilarity,
    params: &UdiParams,
    cache: Option<&SolveCache>,
) -> Result<PMapping, MaxEntError> {
    let raw = weighted_correspondences(source, med, matrix, params);
    let corrs = CorrespondenceSet::normalized(raw)?;
    let mut cfg = params.maxent.clone();
    cfg.matching_cap = params.mapping_cap;
    let dist = solve_correspondences_cached(&corrs, &cfg, cache)?;
    let joint = dist.expand(params.mapping_cap)?;

    let list = corrs.correspondences();
    let mut mappings: Vec<(Mapping, f64)> = Vec::with_capacity(joint.len());
    let mut total = 0.0;
    for (matching, p) in joint {
        if p <= 1e-12 {
            continue;
        }
        let mapping = Mapping::one_to_one(matching.iter().filter_map(|&c| {
            let corr = list.get(c)?;
            Some((source.attrs.get(corr.source).copied()?, corr.target))
        }));
        total += p;
        mappings.push((mapping, p));
    }
    if mappings.is_empty() {
        return Ok(PMapping::new(vec![(Mapping::empty(), 1.0)]));
    }
    // Renormalize away the filtered tail and floating drift.
    for (_, p) in &mut mappings {
        *p /= total;
    }
    Ok(PMapping::new(mappings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::SimilarityMatrix;
    use crate::model::{AttrId, SchemaSet};

    /// Two-source fixture with an exactly controllable similarity measure.
    fn fixture() -> (SchemaSet, UdiParams) {
        let set =
            SchemaSet::from_sources([("donor", vec!["name", "phone"]), ("src", vec!["nm", "tel"])]);
        (
            set,
            UdiParams {
                theta: 0.0,
                ..UdiParams::default()
            },
        )
    }

    fn controlled_sim(a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        match (a.min(b), a.max(b)) {
            ("name", "nm") => 0.9,
            ("phone", "tel") => 0.88,
            _ => 0.1,
        }
    }

    #[test]
    fn clean_correspondences_give_confident_mapping() {
        let (set, params) = fixture();
        let matrix = SimilarityMatrix::new(set.vocab(), &controlled_sim);
        let name = set.vocab().id_of("name").unwrap();
        let phone = set.vocab().id_of("phone").unwrap();
        let med = MediatedSchema::from_slices(&[&[name], &[phone]]);
        let src = &set.sources()[1]; // (nm, tel)
        let pm = generate_pmapping(src, &med, &matrix, &params).unwrap();
        // Weights 0.9 / 0.88 are already feasible: the maxent solution is
        // the independent product.
        let nm = set.vocab().id_of("nm").unwrap();
        let tel = set.vocab().id_of("tel").unwrap();
        let full = Mapping::one_to_one([(nm, 0), (tel, 1)]);
        let p_full = pm
            .mappings()
            .iter()
            .find(|(m, _)| m == &full)
            .map(|(_, p)| *p)
            .expect("full mapping present");
        assert!((p_full - 0.9 * 0.88).abs() < 1e-4, "got {p_full}");
        assert_eq!(pm.len(), 4);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (set, params) = fixture();
        let matrix = SimilarityMatrix::new(set.vocab(), &controlled_sim);
        let name = set.vocab().id_of("name").unwrap();
        let phone = set.vocab().id_of("phone").unwrap();
        let med = MediatedSchema::from_slices(&[&[name], &[phone]]);
        let pm = generate_pmapping(&set.sources()[1], &med, &matrix, &params).unwrap();
        let total: f64 = pm.mappings().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pm
            .mappings()
            .iter()
            .all(|(m, _)| m.is_one_to_one() || m.is_empty()));
    }

    #[test]
    fn no_correspondences_yields_empty_mapping() {
        let (set, params) = fixture();
        // Similarity that never clears the threshold.
        let cold = |_: &str, _: &str| 0.0;
        let matrix = SimilarityMatrix::new(set.vocab(), &cold);
        let name = set.vocab().id_of("name").unwrap();
        let med = MediatedSchema::from_slices(&[&[name]]);
        let pm = generate_pmapping(&set.sources()[1], &med, &matrix, &params).unwrap();
        assert_eq!(pm.len(), 1);
        assert!(pm.mappings()[0].0.is_empty());
        assert_eq!(pm.mappings()[0].1, 1.0);
    }

    #[test]
    fn ambiguous_attribute_splits_probability() {
        // Source attr `phone` equally similar to clusters {hPhone} and
        // {oPhone}: Example 2.1's ambiguity.
        let set =
            SchemaSet::from_sources([("donor", vec!["hPhone", "oPhone"]), ("src", vec!["phone"])]);
        let sim = |a: &str, b: &str| -> f64 {
            if a == b {
                1.0
            } else if (a, b) != ("hPhone", "oPhone") && (a, b) != ("oPhone", "hPhone") {
                0.9 // phone ~ hPhone, phone ~ oPhone
            } else {
                0.1
            }
        };
        let matrix = SimilarityMatrix::new(set.vocab(), &sim);
        let h = set.vocab().id_of("hPhone").unwrap();
        let o = set.vocab().id_of("oPhone").unwrap();
        let med = MediatedSchema::from_slices(&[&[h], &[o]]);
        let params = UdiParams {
            theta: 0.0,
            ..UdiParams::default()
        };
        let pm = generate_pmapping(&set.sources()[1], &med, &matrix, &params).unwrap();
        let phone = set.vocab().id_of("phone").unwrap();
        // Raw weights (0.9, 0.9) share source attr `phone` → row sum 1.8 →
        // normalized to 0.5 each. Mappings: →h (0.5), →o (0.5); the empty
        // mapping gets zero mass because the two targets exhaust it.
        let p_h: f64 = pm
            .mappings()
            .iter()
            .filter(|(m, _)| m.targets_of(phone).is_some_and(|t| t.contains(&0)))
            .map(|(_, p)| p)
            .sum();
        let p_o: f64 = pm
            .mappings()
            .iter()
            .filter(|(m, _)| m.targets_of(phone).is_some_and(|t| t.contains(&1)))
            .map(|(_, p)| p)
            .sum();
        assert!((p_h - 0.5).abs() < 1e-4, "p(phone→hPhone) = {p_h}");
        assert!((p_o - 0.5).abs() < 1e-4, "p(phone→oPhone) = {p_o}");
    }

    #[test]
    fn explosion_is_reported() {
        // 8 source attrs all similar to 8 singleton clusters pairwise →
        // enormous matching count; tiny cap must trip.
        let names: Vec<String> = (0..8).map(|i| format!("a{i}")).collect();
        let cl_names: Vec<String> = (0..8).map(|i| format!("b{i}")).collect();
        let mut all: Vec<&str> = names.iter().map(String::as_str).collect();
        all.extend(cl_names.iter().map(String::as_str));
        let set = SchemaSet::from_sources([
            ("donor", all.clone()),
            ("src", names.iter().map(String::as_str).collect()),
        ]);
        let hot = |a: &str, b: &str| -> f64 {
            if a == b {
                1.0
            } else if a.starts_with('a') != b.starts_with('a') {
                0.9
            } else {
                0.0
            }
        };
        let matrix = SimilarityMatrix::new(set.vocab(), &hot);
        let clusters: Vec<Vec<AttrId>> = cl_names
            .iter()
            .map(|n| vec![set.vocab().id_of(n).unwrap()])
            .collect();
        let cluster_slices: Vec<&[AttrId]> = clusters.iter().map(Vec::as_slice).collect();
        let med = MediatedSchema::from_slices(&cluster_slices);
        let params = UdiParams {
            theta: 0.0,
            mapping_cap: 50,
            ..UdiParams::default()
        };
        let err = generate_pmapping(&set.sources()[1], &med, &matrix, &params).unwrap_err();
        assert!(matches!(err, MaxEntError::Explosion { .. }));
    }
}

//! Epsilon-aware comparison helpers for probability arithmetic.
//!
//! The probabilities UDI manipulates — p-med-schema weights (Algorithm 2),
//! max-entropy p-mapping masses (Theorem 5.2), pooled answer scores — are
//! produced by iterative solvers and float summation, so exact `==`/`!=`
//! on them is almost always a bug: two mathematically equal quantities
//! differ in the last ulps depending on summation order. The `float-eq`
//! audit lint bans raw float equality in probability crates; these helpers
//! are the sanctioned replacement, with one shared tolerance so "equal"
//! means the same thing everywhere.

/// Absolute tolerance for probability comparisons.
///
/// Probabilities live in `[0, 1]`, so an absolute epsilon is appropriate
/// (relative error is meaningless near zero). `1e-9` sits far above the
/// ~1e-16 noise floor of `f64` summation over the workloads UDI handles,
/// and far below the ~1e-3 probability differences that are ever
/// semantically meaningful in the paper's algorithms.
pub const PROB_EPS: f64 = 1e-9;

/// True when `a` and `b` are equal to within [`PROB_EPS`].
///
/// ```
/// use udi_schema::float::approx_eq;
///
/// assert!(approx_eq(0.1 + 0.2, 0.3));
/// assert!(!approx_eq(0.3, 0.300001));
/// ```
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= PROB_EPS
}

/// True when `x` is zero to within [`PROB_EPS`] — the guard to use before
/// dividing by a probability sum.
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= PROB_EPS
}

/// Clamp an accumulated probability into `[0, 1]`.
///
/// Summing mapping masses (by-table pooling, disjunction accumulators)
/// legitimately drifts a few ulps past 1; this is the sanctioned cap, so
/// every accumulator clamps the same way. Excess beyond [`PROB_EPS`] is
/// *not* rounding noise — it means some upstream distribution summed past
/// 1, which is a logic error — so it is flagged with a `debug_assert`
/// while release builds still serve the clamped value.
///
/// ```
/// use udi_schema::float::clamp_prob;
///
/// assert_eq!(clamp_prob(0.4), 0.4);
/// assert_eq!(clamp_prob(1.0 + 1e-12), 1.0);
/// ```
pub fn clamp_prob(p: f64) -> f64 {
    debug_assert!(
        p <= 1.0 + PROB_EPS,
        "accumulated probability {p} exceeds 1 by more than PROB_EPS — \
         an upstream distribution sums past 1"
    );
    p.clamp(0.0, 1.0)
}

/// True when the slice sums to 1 within `n · PROB_EPS` — the normalization
/// check for a probability distribution, with the tolerance scaled to the
/// number of additions that produced the sum.
pub fn sums_to_one(probs: &[f64]) -> bool {
    let n = probs.len().max(1) as f64;
    (probs.iter().sum::<f64>() - 1.0).abs() <= n * PROB_EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_summation_noise() {
        let sum: f64 = (0..10).map(|_| 0.1).sum();
        assert!(approx_eq(sum, 1.0));
        assert!(!approx_eq(0.5, 0.5 + 1e-6));
    }

    #[test]
    fn approx_zero_bounds() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(1e-12));
        assert!(!approx_zero(1e-6));
    }

    #[test]
    fn clamp_prob_caps_drift_and_passes_through() {
        assert_eq!(clamp_prob(0.0), 0.0);
        assert_eq!(clamp_prob(0.7), 0.7);
        let drifted = 0.3 + 0.7000000000000003; // a few ulps above 1
        assert!(drifted > 1.0);
        assert_eq!(clamp_prob(drifted), 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds 1 by more than PROB_EPS")]
    fn clamp_prob_flags_real_excess_in_debug() {
        let _ = clamp_prob(1.4);
    }

    #[test]
    fn sums_to_one_scales_with_length() {
        let uniform = vec![0.25; 4];
        assert!(sums_to_one(&uniform));
        assert!(!sums_to_one(&[0.5, 0.4]));
        assert!(sums_to_one(&[1.0]));
    }
}

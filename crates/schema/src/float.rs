//! Epsilon-aware comparison helpers for probability arithmetic.
//!
//! The probabilities UDI manipulates — p-med-schema weights (Algorithm 2),
//! max-entropy p-mapping masses (Theorem 5.2), pooled answer scores — are
//! produced by iterative solvers and float summation, so exact `==`/`!=`
//! on them is almost always a bug: two mathematically equal quantities
//! differ in the last ulps depending on summation order. The `float-eq`
//! audit lint bans raw float equality in probability crates; these helpers
//! are the sanctioned replacement, with one shared tolerance so "equal"
//! means the same thing everywhere.

/// Absolute tolerance for probability comparisons.
///
/// Probabilities live in `[0, 1]`, so an absolute epsilon is appropriate
/// (relative error is meaningless near zero). `1e-9` sits far above the
/// ~1e-16 noise floor of `f64` summation over the workloads UDI handles,
/// and far below the ~1e-3 probability differences that are ever
/// semantically meaningful in the paper's algorithms.
pub const PROB_EPS: f64 = 1e-9;

/// True when `a` and `b` are equal to within [`PROB_EPS`].
///
/// ```
/// use udi_schema::float::approx_eq;
///
/// assert!(approx_eq(0.1 + 0.2, 0.3));
/// assert!(!approx_eq(0.3, 0.300001));
/// ```
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= PROB_EPS
}

/// True when `x` is zero to within [`PROB_EPS`] — the guard to use before
/// dividing by a probability sum.
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= PROB_EPS
}

/// True when the slice sums to 1 within `n · PROB_EPS` — the normalization
/// check for a probability distribution, with the tolerance scaled to the
/// number of additions that produced the sum.
pub fn sums_to_one(probs: &[f64]) -> bool {
    let n = probs.len().max(1) as f64;
    (probs.iter().sum::<f64>() - 1.0).abs() <= n * PROB_EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_summation_noise() {
        let sum: f64 = (0..10).map(|_| 0.1).sum();
        assert!(approx_eq(sum, 1.0));
        assert!(!approx_eq(0.5, 0.5 + 1e-6));
    }

    #[test]
    fn approx_zero_bounds() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(1e-12));
        assert!(!approx_zero(1e-6));
    }

    #[test]
    fn sums_to_one_scales_with_length() {
        let uniform = vec![0.25; 4];
        assert!(sums_to_one(&uniform));
        assert!(!sums_to_one(&[0.5, 0.4]));
        assert!(sums_to_one(&[1.0]));
    }
}

//! Consolidation of a p-med-schema into a single mediated schema with
//! consolidated (one-to-many) p-mappings (§6, Algorithm 3, Theorem 6.2).

use std::collections::BTreeMap;

use crate::model::{AttrId, Mapping, MediatedSchema, PMapping, PMedSchema};

/// Algorithm 3: the coarsest common refinement of the possible mediated
/// schemas — two attributes share a cluster in the result iff they share a
/// cluster in *every* input schema.
///
/// Attributes absent from some input schema (possible only for degenerate
/// inputs; UDI's candidates always cover the same frequent attributes) are
/// treated as forming their own cluster in the schemas that miss them.
pub fn consolidate_schemas(schemas: &[MediatedSchema]) -> MediatedSchema {
    assert!(!schemas.is_empty(), "nothing to consolidate");
    // Signature of an attribute: its cluster index in each schema.
    let universe: std::collections::BTreeSet<AttrId> =
        schemas.iter().flat_map(|m| m.attribute_set()).collect();
    let mut groups: BTreeMap<Vec<Option<usize>>, std::collections::BTreeSet<AttrId>> =
        BTreeMap::new();
    for &a in &universe {
        let mut sig: Vec<Option<usize>> = schemas.iter().map(|m| m.cluster_of(a)).collect();
        // An attribute missing from a schema is its own singleton there:
        // give it a unique marker so it never merges through that schema.
        for s in sig.iter_mut() {
            if s.is_none() {
                *s = Some(usize::MAX - a.0 as usize);
            }
        }
        groups.entry(sig).or_default().insert(a);
    }
    MediatedSchema::new(groups.into_values().collect())
}

/// Consolidate per-schema p-mappings into one p-mapping against the
/// consolidated schema `target` (§6, three steps):
///
/// 1. rewrite each mapping's correspondences `(a, A)` into the set
///    `{(a, B) : B ∈ target, B ⊆ A}` (one-to-many);
/// 2. scale each mapping's probability by `Pr(M_i)`;
/// 3. merge identical rewritten mappings across all `M_i`, summing
///    probabilities.
///
/// `pmappings[i]` must be the p-mapping for `pmed.schemas()[i].0`.
/// Theorem 6.2 guarantees the result answers every query exactly as the
/// p-med-schema does (executable as a property test in `udi-core`).
pub fn consolidate_pmappings(
    pmed: &PMedSchema,
    pmappings: &[PMapping],
    target: &MediatedSchema,
) -> PMapping {
    Consolidator::new(pmed, target).consolidate(pmappings)
}

/// The schema-level part of p-mapping consolidation, precomputed once per
/// `(p-med-schema, target)` pair: the cluster refinement table depends only
/// on the schemas, not the source, so consolidating a whole catalog should
/// build it once instead of once per source (it dominates the per-source
/// cost otherwise — every call is `schemas × clusters²` subset checks).
pub struct Consolidator<'a> {
    pmed: &'a PMedSchema,
    /// Per input schema, cluster index → target cluster indices.
    refinements: Vec<Vec<Vec<usize>>>,
}

impl<'a> Consolidator<'a> {
    /// Precompute the refinement table of `target` against every possible
    /// schema of `pmed`.
    pub fn new(pmed: &'a PMedSchema, target: &MediatedSchema) -> Consolidator<'a> {
        let refinements: Vec<Vec<Vec<usize>>> = pmed
            .schemas()
            .iter()
            .map(|(m, _)| {
                m.clusters()
                    .iter()
                    .map(|big| {
                        target
                            .clusters()
                            .iter()
                            .enumerate()
                            .filter(|(_, small)| small.is_subset(big))
                            .map(|(j, _)| j)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Consolidator { pmed, refinements }
    }

    /// Consolidate one source's per-schema p-mappings (see
    /// [`consolidate_pmappings`]).
    pub fn consolidate(&self, pmappings: &[PMapping]) -> PMapping {
        assert_eq!(
            self.pmed.len(),
            pmappings.len(),
            "one p-mapping per possible schema"
        );
        let mut merged: BTreeMap<Mapping, f64> = BTreeMap::new();
        for (i, ((_, p_schema), pm)) in self.pmed.schemas().iter().zip(pmappings).enumerate() {
            for (m, p_map) in pm.mappings() {
                let mut rewritten = Mapping::empty();
                for (a, big_idx) in m.correspondences() {
                    let refined = self
                        .refinements
                        .get(i)
                        .and_then(|r| r.get(big_idx))
                        .map(Vec::as_slice)
                        .unwrap_or(&[]);
                    for &j in refined {
                        rewritten.insert(a, j);
                    }
                }
                *merged.entry(rewritten).or_insert(0.0) += p_map * p_schema;
            }
        }
        let mappings: Vec<(Mapping, f64)> =
            merged.into_iter().filter(|(_, p)| *p > 1e-15).collect();
        PMapping::new(mappings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<AttrId> {
        xs.iter().map(|&x| AttrId(x)).collect()
    }

    /// Example 6.1 from the paper.
    #[test]
    fn example_6_1() {
        // M1: {a1,a2,a3}, {a4}, {a5,a6};  M2: {a2,a3,a4}, {a1,a5,a6}.
        let m1 = MediatedSchema::from_slices(&[&ids(&[1, 2, 3]), &ids(&[4]), &ids(&[5, 6])]);
        let m2 = MediatedSchema::from_slices(&[&ids(&[2, 3, 4]), &ids(&[1, 5, 6])]);
        let t = consolidate_schemas(&[m1, m2]);
        // T: {a1}, {a2,a3}, {a4}, {a5,a6}.
        let expect =
            MediatedSchema::from_slices(&[&ids(&[1]), &ids(&[2, 3]), &ids(&[4]), &ids(&[5, 6])]);
        assert_eq!(t, expect);
    }

    #[test]
    fn consolidating_one_schema_is_identity() {
        let m = MediatedSchema::from_slices(&[&ids(&[0, 1]), &ids(&[2])]);
        assert_eq!(consolidate_schemas(std::slice::from_ref(&m)), m);
    }

    #[test]
    fn consolidation_is_coarsest_refinement() {
        let m1 = MediatedSchema::from_slices(&[&ids(&[0, 1, 2])]);
        let m2 = MediatedSchema::from_slices(&[&ids(&[0, 1]), &ids(&[2])]);
        let t = consolidate_schemas(&[m1.clone(), m2.clone()]);
        // a0,a1 together in both → together in T; a2 split in m2 → split.
        assert_eq!(t, m2);
        // Refinement property: every cluster of T is inside a cluster of
        // each input.
        for input in [&m1, &m2] {
            for small in t.clusters() {
                assert!(input.clusters().iter().any(|big| small.is_subset(big)));
            }
        }
    }

    #[test]
    fn attribute_missing_from_one_schema_stays_singleton() {
        let m1 = MediatedSchema::from_slices(&[&ids(&[0, 1])]);
        let m2 = MediatedSchema::from_slices(&[&ids(&[0])]); // lacks a1
        let t = consolidate_schemas(&[m1, m2]);
        let expect = MediatedSchema::from_slices(&[&ids(&[0]), &ids(&[1])]);
        assert_eq!(t, expect);
    }

    #[test]
    fn pmapping_consolidation_rewrites_one_to_many() {
        // M1 groups {a0,a1}; M2 splits them. T = split.
        let m1 = MediatedSchema::from_slices(&[&ids(&[0, 1])]);
        let m2 = MediatedSchema::from_slices(&[&ids(&[0]), &ids(&[1])]);
        let pmed = PMedSchema::new(vec![(m1, 0.6), (m2, 0.4)]);
        let t = consolidate_schemas(&[pmed.schemas()[0].0.clone(), pmed.schemas()[1].0.clone()]);

        // Source attr a9 maps to the big cluster under M1, to cluster {a0}
        // under M2.
        let pm1 = PMapping::new(vec![(Mapping::one_to_one([(AttrId(9), 0)]), 1.0)]);
        let pm2 = PMapping::new(vec![(Mapping::one_to_one([(AttrId(9), 0)]), 1.0)]);
        let pm = consolidate_pmappings(&pmed, &[pm1, pm2], &t);

        // Under M1, (a9 → {a0,a1}) rewrites to {(a9→T0), (a9→T1)} with
        // probability 0.6; under M2, (a9 → {a0}) rewrites to {(a9→T0)} with
        // probability 0.4.
        assert_eq!(pm.len(), 2);
        let mut both = Mapping::empty();
        both.insert(AttrId(9), 0);
        both.insert(AttrId(9), 1);
        let single = Mapping::one_to_one([(AttrId(9), 0)]);
        let p_both = pm.mappings().iter().find(|(m, _)| m == &both).unwrap().1;
        let p_single = pm.mappings().iter().find(|(m, _)| m == &single).unwrap().1;
        assert!((p_both - 0.6).abs() < 1e-12);
        assert!((p_single - 0.4).abs() < 1e-12);
    }

    #[test]
    fn pmapping_consolidation_merges_identical_rewrites() {
        // Both schemas identical → rewritten mappings merge with total
        // probability 1.
        let m = MediatedSchema::from_slices(&[&ids(&[0]), &ids(&[1])]);
        let pmed = PMedSchema::new(vec![(m.clone(), 1.0)]);
        let t = consolidate_schemas(&[m]);
        let inner = PMapping::new(vec![
            (Mapping::one_to_one([(AttrId(9), 0)]), 0.7),
            (Mapping::empty(), 0.3),
        ]);
        let pm = consolidate_pmappings(&pmed, &[inner], &t);
        assert_eq!(pm.len(), 2);
        let total: f64 = pm.mappings().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mapping_survives_consolidation() {
        let m1 = MediatedSchema::from_slices(&[&ids(&[0, 1])]);
        let m2 = MediatedSchema::from_slices(&[&ids(&[0]), &ids(&[1])]);
        let pmed = PMedSchema::new(vec![(m1.clone(), 0.5), (m2.clone(), 0.5)]);
        let t = consolidate_schemas(&[m1, m2]);
        let pm1 = PMapping::new(vec![(Mapping::empty(), 1.0)]);
        let pm2 = PMapping::new(vec![(Mapping::empty(), 1.0)]);
        let pm = consolidate_pmappings(&pmed, &[pm1, pm2], &t);
        assert_eq!(pm.len(), 1);
        assert!(pm.mappings()[0].0.is_empty());
        assert!((pm.mappings()[0].1 - 1.0).abs() < 1e-12);
    }
}

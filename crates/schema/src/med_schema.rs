//! Mediated-schema enumeration and probability assignment (Algorithm 1
//! steps 6–8, Algorithm 2).

use std::collections::{BTreeMap, BTreeSet, HashSet};

use udi_similarity::Similarity;

use crate::graph::{build_similarity_graph, Edge, SimilarityGraph};
use crate::model::{AttrId, MediatedSchema, PMedSchema, SchemaSet};
use crate::UdiParams;

/// Small union-find over node indices.
#[derive(Clone)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        // Iterative walk with checked access: an out-of-range index is its
        // own root, so `find` is total.
        let mut root = x;
        while let Some(&p) = self.parent.get(root) {
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression: repoint every node on the walk at the root.
        let mut cur = x;
        while let Some(slot) = self.parent.get_mut(cur) {
            let next = *slot;
            if next == cur {
                break;
            }
            *slot = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            if let Some(slot) = self.parent.get_mut(ra) {
                *slot = rb;
            }
        }
    }
}

/// Enumerate all distinct mediated schemas induced by including/excluding
/// subsets of the uncertain edges (Algorithm 1, steps 6–8).
///
/// Step 6 of the paper prunes uncertain edges that cannot change the
/// resulting clustering: edges within one certain-component, and all but one
/// of a set of parallel uncertain edges between the same pair of
/// certain-components. We implement the slightly stronger canonical form —
/// deduplicate uncertain edges by unordered certain-component pair, keeping
/// the heaviest — which yields the same set of distinct schemas because
/// step 8 deduplicates anyway.
///
/// When more than `params.max_uncertain_edges` uncertain edges survive
/// pruning, the least ambiguous excess edges (weight farthest from τ) are
/// resolved deterministically: treated as certain when at or above τ,
/// dropped otherwise. This bounds the `2^u` enumeration.
pub fn enumerate_mediated_schemas(
    graph: &SimilarityGraph,
    params: &UdiParams,
) -> Vec<MediatedSchema> {
    let n = graph.nodes.len();
    let index_of: BTreeMap<AttrId, usize> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i))
        .collect();

    // Certain edges merge unconditionally; extra_certain accumulates excess
    // uncertain edges promoted by the cap.
    let mut certain: Vec<(usize, usize)> = graph
        .certain_edges()
        .filter_map(|e| Some((index_of.get(&e.a).copied()?, index_of.get(&e.b).copied()?)))
        .collect();
    let mut uncertain: Vec<Edge> = graph.uncertain_edges().cloned().collect();

    let kept_uncertain: Vec<(usize, usize)> = loop {
        let mut uf = UnionFind::new(n);
        for &(a, b) in &certain {
            uf.union(a, b);
        }
        // Deduplicate by certain-component pair, keeping the heaviest edge.
        let mut best: BTreeMap<(usize, usize), Edge> = BTreeMap::new();
        for e in &uncertain {
            let (Some(&ia), Some(&ib)) = (index_of.get(&e.a), index_of.get(&e.b)) else {
                continue;
            };
            let (ca, cb) = (uf.find(ia), uf.find(ib));
            if ca == cb {
                continue; // Step 6 case (1): already certainly connected.
            }
            let key = (ca.min(cb), ca.max(cb));
            match best.get(&key) {
                Some(prev) if prev.weight >= e.weight => {}
                _ => {
                    best.insert(key, *e);
                }
            }
        }
        let mut deduped: Vec<Edge> = best.into_values().collect();
        if deduped.len() <= params.max_uncertain_edges {
            break deduped
                .iter()
                .filter_map(|e| Some((index_of.get(&e.a).copied()?, index_of.get(&e.b).copied()?)))
                .collect();
        }
        // Too many: resolve the least ambiguous (|w − τ| largest) edges.
        deduped.sort_by(|x, y| {
            let ax = (x.weight - params.tau).abs();
            let ay = (y.weight - params.tau).abs();
            ax.partial_cmp(&ay).unwrap_or(std::cmp::Ordering::Equal)
        });
        let excess: Vec<Edge> = deduped.split_off(params.max_uncertain_edges);
        for e in &excess {
            if e.weight >= params.tau {
                let (Some(&ia), Some(&ib)) = (index_of.get(&e.a), index_of.get(&e.b)) else {
                    continue;
                };
                certain.push((ia, ib));
            }
        }
        uncertain = deduped;
        // Loop: promoting edges to certain may alias other component pairs.
    };

    // Base components under certain edges only.
    let mut base = UnionFind::new(n);
    for &(a, b) in &certain {
        base.union(a, b);
    }

    // Enumerate subsets of the kept uncertain edges (step 7). The paper
    // "omits the edges in the subset", i.e. includes the complement; both
    // phrasings enumerate the same power set.
    let u = kept_uncertain.len();
    // udi-audit: allow(deterministic-iteration, "membership-only dedup; output order is the `out` vec's enumeration order")
    let mut seen: HashSet<MediatedSchema> = HashSet::new();
    let mut out: Vec<MediatedSchema> = Vec::new();
    for mask in 0..(1_u64 << u) {
        let mut uf = base.clone();
        for (bit, &(a, b)) in kept_uncertain.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                uf.union(a, b);
            }
        }
        let mut clusters: BTreeMap<usize, BTreeSet<AttrId>> = BTreeMap::new();
        for (i, &attr) in graph.nodes.iter().enumerate() {
            clusters.entry(uf.find(i)).or_default().insert(attr);
        }
        let schema = MediatedSchema::new(clusters.into_values().collect());
        if seen.insert(schema.clone()) {
            out.push(schema);
        }
    }
    out
}

/// Algorithm 2: probability of each mediated schema is the share of source
/// schemas it is consistent with. Schemas consistent with no source are
/// dropped; if none is consistent with any source, probabilities fall back
/// to uniform (every schema equally plausible).
pub fn assign_probabilities(
    schemas: Vec<MediatedSchema>,
    set: &SchemaSet,
) -> Vec<(MediatedSchema, f64)> {
    assert!(!schemas.is_empty(), "need at least one candidate schema");
    let counts: Vec<usize> = schemas
        .iter()
        .map(|m| {
            set.sources()
                .iter()
                .filter(|s| m.is_consistent_with(s))
                .count()
        })
        .collect();
    let total: usize = counts.iter().sum();
    if total == 0 {
        let p = 1.0 / schemas.len() as f64;
        return schemas.into_iter().map(|m| (m, p)).collect();
    }
    schemas
        .into_iter()
        .zip(counts)
        .filter(|(_, c)| *c > 0)
        .map(|(m, c)| (m, c as f64 / total as f64))
        .collect()
}

/// End-to-end p-med-schema construction (§4.2): build the similarity graph,
/// enumerate candidate schemas, assign probabilities, sort by probability
/// (descending; ties broken by schema order for determinism).
pub fn build_p_med_schema(
    set: &SchemaSet,
    sim: &dyn Similarity,
    params: &UdiParams,
) -> Result<PMedSchema, crate::MaxEntError> {
    let graph = build_similarity_graph(set, sim, params);
    let schemas = enumerate_mediated_schemas(&graph, params);
    let mut weighted = assign_probabilities(schemas, set);
    weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(PMedSchema::new(weighted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_similarity_graph;

    /// name-keyed similarity fixture: phone≈tel certainly, phone≈mobile
    /// uncertainly.
    fn sim(a: &str, b: &str) -> f64 {
        match (a.min(b), a.max(b)) {
            ("phone", "tel") => 0.90,
            ("mobile", "phone") => 0.855,
            _ => 0.0,
        }
    }

    fn set() -> SchemaSet {
        SchemaSet::from_sources([
            ("s1", vec!["name", "phone", "tel"]),
            ("s2", vec!["name", "phone", "mobile"]),
            ("s3", vec!["name", "mobile"]),
            ("s4", vec!["name", "phone"]),
        ])
    }

    fn params() -> UdiParams {
        UdiParams {
            theta: 0.0,
            ..UdiParams::default()
        }
    }

    #[test]
    fn uncertain_edge_doubles_schema_count() {
        let s = set();
        let g = build_similarity_graph(&s, &sim, &params());
        let schemas = enumerate_mediated_schemas(&g, &params());
        // One uncertain edge → two distinct schemas.
        assert_eq!(schemas.len(), 2);
        let phone = s.vocab().id_of("phone").unwrap();
        let tel = s.vocab().id_of("tel").unwrap();
        let mobile = s.vocab().id_of("mobile").unwrap();
        // In both schemas phone & tel share a cluster (certain edge).
        for m in &schemas {
            assert_eq!(m.cluster_of(phone), m.cluster_of(tel));
        }
        // Exactly one schema merges mobile in as well.
        let merged: Vec<bool> = schemas
            .iter()
            .map(|m| m.cluster_of(phone) == m.cluster_of(mobile))
            .collect();
        assert_eq!(merged.iter().filter(|&&x| x).count(), 1);
    }

    #[test]
    fn probabilities_favor_consistent_schema() {
        // s2 contains both phone and mobile, so the schema merging them is
        // inconsistent with s2 but consistent with the rest.
        let s = set();
        let pmed = build_p_med_schema(&s, &sim, &params()).unwrap();
        assert_eq!(pmed.len(), 2);
        let phone = s.vocab().id_of("phone").unwrap();
        let mobile = s.vocab().id_of("mobile").unwrap();
        let (top, p_top) = (&pmed.schemas()[0].0, pmed.schemas()[0].1);
        // s1 contains both phone and tel (one cluster in both schemas), so
        // s1 is consistent with neither. Split schema: consistent with
        // s2, s3, s4 (3 sources); merged schema: s3, s4 only (2).
        assert_ne!(top.cluster_of(phone), top.cluster_of(mobile));
        assert!((p_top - 3.0 / 5.0).abs() < 1e-12);
        assert!((pmed.schemas()[1].1 - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn no_uncertain_edges_gives_single_schema() {
        let s = SchemaSet::from_sources([("s1", vec!["a", "b", "c"])]);
        let certain_sim = |x: &str, y: &str| -> f64 {
            if (x, y) == ("a", "b") || (x, y) == ("b", "a") {
                0.95
            } else {
                0.0
            }
        };
        let pmed = build_p_med_schema(&s, &certain_sim, &params()).unwrap();
        assert!(pmed.is_deterministic());
        assert_eq!(pmed.top().len(), 2); // {a,b}, {c}
    }

    #[test]
    fn parallel_uncertain_edges_are_deduplicated() {
        // x-a and x-b both uncertain while a-b certain: only one uncertain
        // edge should survive → 2 schemas, not 4.
        let s = SchemaSet::from_sources([("s1", vec!["a", "b", "x"])]);
        let sim = |p: &str, q: &str| -> f64 {
            match (p.min(q), p.max(q)) {
                ("a", "b") => 0.95,
                ("a", "x") => 0.85,
                ("b", "x") => 0.86,
                _ => 0.0,
            }
        };
        let g = build_similarity_graph(&s, &sim, &params());
        assert_eq!(g.uncertain_edges().count(), 2);
        let schemas = enumerate_mediated_schemas(&g, &params());
        assert_eq!(schemas.len(), 2);
    }

    #[test]
    fn intra_component_uncertain_edges_are_pruned() {
        // a-b certain, a-c certain, b-c uncertain → b,c already connected.
        let s = SchemaSet::from_sources([("s1", vec!["a", "b", "c"])]);
        let sim = |p: &str, q: &str| -> f64 {
            match (p.min(q), p.max(q)) {
                ("a", "b") | ("a", "c") => 0.95,
                ("b", "c") => 0.85,
                _ => 0.0,
            }
        };
        let g = build_similarity_graph(&s, &sim, &params());
        let schemas = enumerate_mediated_schemas(&g, &params());
        assert_eq!(schemas.len(), 1);
        assert_eq!(schemas[0].len(), 1);
    }

    #[test]
    fn cap_resolves_excess_edges_deterministically() {
        // Three uncertain edges between disjoint pairs, cap at 1.
        let s = SchemaSet::from_sources([("s1", vec!["a", "b", "c", "d", "e", "f"])]);
        let sim = |p: &str, q: &str| -> f64 {
            match (p.min(q), p.max(q)) {
                ("a", "b") => 0.851, // most ambiguous → stays uncertain
                ("c", "d") => 0.866, // above tau → promoted to certain
                ("e", "f") => 0.836, // below tau → dropped
                _ => 0.0,
            }
        };
        let p = UdiParams {
            theta: 0.0,
            max_uncertain_edges: 1,
            ..UdiParams::default()
        };
        let g = build_similarity_graph(&s, &sim, &p);
        assert_eq!(g.uncertain_edges().count(), 3);
        let schemas = enumerate_mediated_schemas(&g, &p);
        assert_eq!(schemas.len(), 2);
        let c = s.vocab().id_of("c").unwrap();
        let d = s.vocab().id_of("d").unwrap();
        let e = s.vocab().id_of("e").unwrap();
        let f = s.vocab().id_of("f").unwrap();
        for m in &schemas {
            assert_eq!(m.cluster_of(c), m.cluster_of(d), "c-d promoted to certain");
            assert_ne!(m.cluster_of(e), m.cluster_of(f), "e-f dropped");
        }
    }

    #[test]
    fn zero_consistency_falls_back_to_uniform() {
        // Single source contains both a and b; both candidate schemas merge
        // them somehow... construct directly.
        let s = SchemaSet::from_sources([("s1", vec!["a", "b"])]);
        let a = s.vocab().id_of("a").unwrap();
        let b = s.vocab().id_of("b").unwrap();
        let merged = MediatedSchema::from_slices(&[&[a, b]]);
        let weighted = assign_probabilities(vec![merged], &s);
        assert_eq!(weighted.len(), 1);
        assert_eq!(weighted[0].1, 1.0);
    }

    #[test]
    fn inconsistent_schema_is_dropped_when_alternatives_exist() {
        let s = SchemaSet::from_sources([("s1", vec!["a", "b"])]);
        let a = s.vocab().id_of("a").unwrap();
        let b = s.vocab().id_of("b").unwrap();
        let merged = MediatedSchema::from_slices(&[&[a, b]]);
        let split = MediatedSchema::from_slices(&[&[a], &[b]]);
        let weighted = assign_probabilities(vec![merged, split.clone()], &s);
        assert_eq!(weighted.len(), 1);
        assert_eq!(weighted[0].0, split);
        assert_eq!(weighted[0].1, 1.0);
    }
}

//! Value generators for entity fields.

use rand::rngs::StdRng;
use rand::Rng;

use udi_store::Value;

use crate::vocab::{pool, PoolId};

/// How to synthesize values of a concept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueKind {
    /// `First Last` from the name pools.
    PersonName,
    /// `123 Maple Ave` style street addresses.
    StreetAddress,
    /// US-style `555-0123` phone numbers.
    Phone,
    /// `first.last@example.com` addresses.
    Email,
    /// A year in the inclusive range.
    Year {
        /// Earliest year.
        min: i64,
        /// Latest year.
        max: i64,
    },
    /// An integer in the inclusive range. With probability `stringly`, the
    /// value is stored as text — the web-table artifact behind the paper's
    /// Course-domain precision loss (lexicographic comparison of numbers).
    IntRange {
        /// Smallest value.
        min: i64,
        /// Largest value.
        max: i64,
        /// Probability of storing the number as text.
        stringly: f64,
    },
    /// A price with two decimals in the inclusive dollar range.
    Money {
        /// Minimum dollars.
        min: i64,
        /// Maximum dollars.
        max: i64,
    },
    /// One word/phrase from a static pool.
    FromPool(PoolId),
    /// A multi-word title assembled from a pool.
    TitleWords {
        /// Pool to draw words from.
        pool: PoolId,
        /// Minimum words.
        min_words: usize,
        /// Maximum words.
        max_words: usize,
    },
    /// `DEPT 123`-style course codes.
    CourseCode,
    /// `123-145`-style page ranges.
    Pages,
    /// `1234-5678`-style ISSNs.
    Issn,
    /// `https://...` links (e.g. the Bib corpus's `link to pubmed`).
    Url,
    /// `Mon 10:00`-style time slots.
    TimeSlot,
    /// 17-character vehicle identification numbers.
    Vin,
}

impl ValueKind {
    /// Generate one value.
    pub fn generate(self, rng: &mut StdRng) -> Value {
        match self {
            ValueKind::PersonName => {
                let f = choose(rng, PoolId::FirstNames);
                let l = choose(rng, PoolId::LastNames);
                Value::text(format!("{f} {l}"))
            }
            ValueKind::StreetAddress => {
                let n: u32 = rng.gen_range(1..999);
                let s = choose(rng, PoolId::Streets);
                Value::text(format!("{n} {s}"))
            }
            ValueKind::Phone => {
                let a: u32 = rng.gen_range(200..999);
                let b: u32 = rng.gen_range(0..10_000);
                Value::text(format!("{a}-{b:04}"))
            }
            ValueKind::Email => {
                let f = choose(rng, PoolId::FirstNames).to_lowercase();
                let l = choose(rng, PoolId::LastNames).to_lowercase();
                Value::text(format!("{f}.{l}@example.com"))
            }
            ValueKind::Year { min, max } => Value::Int(rng.gen_range(min..=max)),
            ValueKind::IntRange { min, max, stringly } => {
                let v = rng.gen_range(min..=max);
                if rng.gen_bool(stringly) {
                    Value::Text(v.to_string())
                } else {
                    Value::Int(v)
                }
            }
            ValueKind::Money { min, max } => {
                let dollars = rng.gen_range(min..=max);
                let cents: i64 = rng.gen_range(0..100);
                Value::float(dollars as f64 + cents as f64 / 100.0)
            }
            ValueKind::FromPool(p) => Value::text(choose(rng, p)),
            ValueKind::TitleWords {
                pool: p,
                min_words,
                max_words,
            } => {
                let n = rng.gen_range(min_words..=max_words);
                let words: Vec<&str> = (0..n).map(|_| choose(rng, p)).collect();
                Value::text(words.join(" "))
            }
            ValueKind::CourseCode => {
                let dept = choose(rng, PoolId::Departments);
                let prefix: String = dept
                    .split_whitespace()
                    .map(|w| w.chars().next().unwrap_or('X'))
                    .collect::<String>()
                    .to_uppercase();
                let num: u32 = rng.gen_range(100..600);
                Value::text(format!("{prefix}{num}"))
            }
            ValueKind::Pages => {
                let start: u32 = rng.gen_range(1..900);
                let len: u32 = rng.gen_range(2..40);
                Value::text(format!("{start}-{}", start + len))
            }
            ValueKind::Issn => {
                let a: u32 = rng.gen_range(1000..10_000);
                let b: u32 = rng.gen_range(1000..10_000);
                Value::text(format!("{a}-{b}"))
            }
            ValueKind::Url => {
                let id: u32 = rng.gen_range(10_000..10_000_000);
                Value::text(format!("https://pubmed.example.org/{id}"))
            }
            ValueKind::TimeSlot => {
                const DAYS: [&str; 5] = ["Mon", "Tue", "Wed", "Thu", "Fri"];
                let day = DAYS.get(rng.gen_range(0..5)).copied().unwrap_or("Mon");
                let hour: u32 = rng.gen_range(8..18);
                Value::text(format!("{day} {hour}:00"))
            }
            ValueKind::Vin => {
                const CHARS: &[u8] = b"ABCDEFGHJKLMNPRSTUVWXYZ0123456789";
                let s: String = (0..17)
                    .map(|_| {
                        CHARS
                            .get(rng.gen_range(0..CHARS.len()))
                            .copied()
                            .unwrap_or(b'A') as char
                    })
                    .collect();
                Value::text(s)
            }
        }
    }
}

fn choose(rng: &mut StdRng, p: PoolId) -> &'static str {
    let words = pool(p);
    words
        .get(rng.gen_range(0..words.len()))
        .copied()
        .unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn generators_produce_expected_shapes() {
        let mut r = rng();
        assert!(matches!(
            ValueKind::PersonName.generate(&mut r),
            Value::Text(_)
        ));
        assert!(matches!(
            ValueKind::Year { min: 1950, max: 2008 }.generate(&mut r),
            Value::Int(y) if (1950..=2008).contains(&y)
        ));
        let money = ValueKind::Money { min: 1, max: 10 }.generate(&mut r);
        let f = money.as_f64().unwrap();
        assert!((1.0..11.0).contains(&f));
        let vin = ValueKind::Vin.generate(&mut r).to_string();
        assert_eq!(vin.len(), 17);
        let pages = ValueKind::Pages.generate(&mut r).to_string();
        assert!(pages.contains('-'));
    }

    #[test]
    fn stringly_int_emits_text_and_int() {
        let mut r = rng();
        let kind = ValueKind::IntRange {
            min: 1,
            max: 500,
            stringly: 0.5,
        };
        let mut text = 0;
        let mut int = 0;
        for _ in 0..200 {
            match kind.generate(&mut r) {
                Value::Text(_) => text += 1,
                Value::Int(_) => int += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(text > 50 && int > 50, "text={text} int={int}");
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..20 {
            assert_eq!(
                ValueKind::PersonName.generate(&mut a),
                ValueKind::PersonName.generate(&mut b)
            );
        }
    }
}

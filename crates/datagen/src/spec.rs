//! The five evaluation domains of Table 1 and their concept inventories.
//!
//! Each concept carries the attribute-name variants observed for it in web
//! tables. The variant lists are engineered to exercise every behaviour the
//! paper reports:
//!
//! - easy synonyms Jaro–Winkler unifies (`author`/`authors`/`author(s)`);
//! - hard synonyms string matching misses (`instructor`/`teacher`/
//!   `lecturer` — the paper's own example of lost recall);
//! - near-threshold confusables that become *uncertain edges*
//!   (`issue`/`issn`, exactly Figure 3's p-med-schema split);
//! - genuinely ambiguous labels shared by two concepts (`phone` can be a
//!   home or office phone — Example 2.1);
//! - stringly-typed numerics (`enrollment` stored as text — the Course
//!   precision artifact of §7.3).

use crate::value::ValueKind;
use crate::vocab::PoolId;

/// One real-world concept of a domain with its naming variants.
#[derive(Debug, Clone)]
pub struct ConceptSpec {
    /// Stable concept key (ground-truth identity).
    pub key: &'static str,
    /// Attribute-name variants, most common first. A variant may be shared
    /// by two concepts (genuine ambiguity).
    pub variants: &'static [&'static str],
    /// Probability that a source includes this concept.
    pub popularity: f64,
    /// Value generator for entity fields of this concept.
    pub value: ValueKind,
}

/// The five domains of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// 161 movie tables.
    Movie,
    /// 817 used-car tables.
    Car,
    /// 49 people/contact tables.
    People,
    /// 647 course-catalog tables.
    Course,
    /// 649 bibliography tables (biology/chemistry skew).
    Bib,
}

impl Domain {
    /// All domains, in Table 1 order.
    pub fn all() -> [Domain; 5] {
        [
            Domain::Movie,
            Domain::Car,
            Domain::People,
            Domain::Course,
            Domain::Bib,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Movie => "Movie",
            Domain::Car => "Car",
            Domain::People => "People",
            Domain::Course => "Course",
            Domain::Bib => "Bib",
        }
    }

    /// Number of source tables in the paper's corpus (Table 1).
    pub fn default_source_count(self) -> usize {
        match self {
            Domain::Movie => 161,
            Domain::Car => 817,
            Domain::People => 49,
            Domain::Course => 647,
            Domain::Bib => 649,
        }
    }

    /// The keyword filter that selected the domain's tables (Table 1).
    pub fn keywords(self) -> &'static str {
        match self {
            Domain::Movie => "movie and year",
            Domain::Car => "make and model",
            Domain::People => {
                "name, one of job and title, and one of organization, company and employer"
            }
            Domain::Course => {
                "one of course and class, one of instructor, teacher and lecturer, \
                 and one of subject, department and title"
            }
            Domain::Bib => "author, title, year, and one of journal and conference",
        }
    }

    /// The domain's concept inventory.
    pub fn concepts(self) -> Vec<ConceptSpec> {
        match self {
            Domain::Movie => movie(),
            Domain::Car => car(),
            Domain::People => people(),
            Domain::Course => course(),
            Domain::Bib => bib(),
        }
    }

    /// The Table 1 keyword filter as concept-key groups: every source of
    /// the corpus must contain at least one concept from each group,
    /// because the paper *selected* its tables by these keywords ("we
    /// selected the tables for each domain by searching for tables that
    /// contained certain keywords"). The generator enforces this.
    pub fn required_groups(self) -> &'static [&'static [&'static str]] {
        match self {
            Domain::Movie => &[&["movie"], &["year"]],
            Domain::Car => &[&["make"], &["model"]],
            Domain::People => &[&["name"], &["job"], &["organization"]],
            Domain::Course => &[
                &["course"],
                &["instructor"],
                &["subject", "department", "title"],
            ],
            Domain::Bib => &[&["author"], &["title"], &["year"], &["journal"]],
        }
    }
}

fn movie() -> Vec<ConceptSpec> {
    vec![
        // `name of movie` links to `movie` at 0.842 — inside [tau-eps, tau)
        // — reachable through UDI's alternative schemas but not through the
        // SingleMed tau-cut: the source of the Figure 6 R-P gap.
        ConceptSpec {
            key: "movie",
            variants: &["movie", "movie title", "name of movie", "film"],
            popularity: 1.0,
            value: ValueKind::TitleWords {
                pool: PoolId::MovieWords,
                min_words: 2,
                max_words: 4,
            },
        },
        ConceptSpec {
            key: "year",
            variants: &["year", "release year", "yr"],
            popularity: 1.0,
            value: ValueKind::Year {
                min: 1950,
                max: 2008,
            },
        },
        ConceptSpec {
            key: "director",
            variants: &["director", "directed by", "director(s)"],
            popularity: 0.7,
            value: ValueKind::PersonName,
        },
        ConceptSpec {
            key: "genre",
            variants: &["genre", "genres", "category"],
            popularity: 0.6,
            value: ValueKind::FromPool(PoolId::Genres),
        },
        ConceptSpec {
            key: "rating",
            variants: &["rating", "ratings", "imdb rating"],
            popularity: 0.45,
            value: ValueKind::IntRange {
                min: 1,
                max: 10,
                stringly: 0.0,
            },
        },
        ConceptSpec {
            key: "runtime",
            variants: &["runtime", "run time", "length"],
            popularity: 0.4,
            value: ValueKind::IntRange {
                min: 70,
                max: 210,
                stringly: 0.0,
            },
        },
        ConceptSpec {
            key: "studio",
            variants: &["studio", "studios"],
            popularity: 0.35,
            value: ValueKind::FromPool(PoolId::Studios),
        },
        ConceptSpec {
            key: "actor",
            variants: &["actor", "actors", "actor name", "starring"],
            popularity: 0.5,
            value: ValueKind::PersonName,
        },
        ConceptSpec {
            key: "language",
            variants: &["language", "lang"],
            popularity: 0.25,
            value: ValueKind::FromPool(PoolId::Languages),
        },
        ConceptSpec {
            key: "country",
            variants: &["country"],
            popularity: 0.3,
            value: ValueKind::FromPool(PoolId::Countries),
        },
    ]
}

fn car() -> Vec<ConceptSpec> {
    vec![
        ConceptSpec {
            key: "make",
            variants: &["make", "car make", "manufacturer", "brand"],
            popularity: 1.0,
            value: ValueKind::FromPool(PoolId::CarMakes),
        },
        ConceptSpec {
            key: "model",
            variants: &["model", "models", "model name"],
            popularity: 1.0,
            value: ValueKind::FromPool(PoolId::CarModels),
        },
        ConceptSpec {
            key: "year",
            variants: &["year", "yr"],
            popularity: 0.9,
            value: ValueKind::Year {
                min: 1990,
                max: 2008,
            },
        },
        ConceptSpec {
            key: "price",
            variants: &["price", "prices", "asking price"],
            popularity: 0.85,
            value: ValueKind::Money {
                min: 500,
                max: 60_000,
            },
        },
        ConceptSpec {
            key: "mileage",
            variants: &["mileage", "miles", "odometer"],
            popularity: 0.7,
            value: ValueKind::IntRange {
                min: 0,
                max: 220_000,
                stringly: 0.0,
            },
        },
        ConceptSpec {
            key: "color",
            variants: &["color", "colour", "exterior color"],
            popularity: 0.5,
            value: ValueKind::FromPool(PoolId::Colors),
        },
        ConceptSpec {
            key: "transmission",
            variants: &["transmission", "trans"],
            popularity: 0.4,
            value: ValueKind::FromPool(PoolId::Transmissions),
        },
        ConceptSpec {
            key: "fuel",
            variants: &["fuel", "fuel type"],
            popularity: 0.3,
            value: ValueKind::FromPool(PoolId::Fuels),
        },
        ConceptSpec {
            key: "doors",
            variants: &["doors", "door count"],
            popularity: 0.25,
            value: ValueKind::IntRange {
                min: 2,
                max: 5,
                stringly: 0.0,
            },
        },
        ConceptSpec {
            key: "vin",
            variants: &["vin", "vin number"],
            popularity: 0.2,
            value: ValueKind::Vin,
        },
        ConceptSpec {
            key: "dealer",
            variants: &["dealer", "dealership", "seller"],
            popularity: 0.35,
            value: ValueKind::FromPool(PoolId::Companies),
        },
        ConceptSpec {
            key: "engine",
            variants: &["engine", "engine size"],
            popularity: 0.25,
            value: ValueKind::FromPool(PoolId::Fuels),
        },
    ]
}

fn people() -> Vec<ConceptSpec> {
    vec![
        ConceptSpec {
            key: "name",
            variants: &["name", "full name", "person"],
            popularity: 1.0,
            value: ValueKind::PersonName,
        },
        // Label shapes are engineered so every cross-concept pair sits
        // below the tau-epsilon band (the paper's corpus showed no
        // cross-concept query junk: its UDI precision is ~1.0), while
        // same-concept pairs span the certain and uncertain bands
        // (`home phone`~`hphone` = 0.852 is an uncertain edge, which is
        // what gives UDI its recall edge over SingleMed in Figure 5).
        // Genuine per-source ambiguity (Example 2.1's shared `phone`) is
        // exercised by the `people_ambiguity` example and the ambiguity
        // stress experiment instead of this benchmark corpus.
        ConceptSpec {
            key: "home phone",
            variants: &["hphone", "home phone"],
            popularity: 0.95,
            value: ValueKind::Phone,
        },
        ConceptSpec {
            key: "office phone",
            variants: &["ophone", "work phone"],
            popularity: 0.9,
            value: ValueKind::Phone,
        },
        // `haddr` links to `home address` at 0.836 — inside [tau-eps, tau)
        // — so only UDI's alternative schemas reach haddr-labeled sources;
        // the SingleMed tau-cut and UnionAll singletons cannot (the exact
        // mechanism behind UDI's recall advantage in Figure 5).
        ConceptSpec {
            key: "home address",
            variants: &["home address", "address", "haddr"],
            popularity: 0.9,
            value: ValueKind::StreetAddress,
        },
        ConceptSpec {
            key: "office address",
            variants: &["work addr", "office addr"],
            popularity: 0.85,
            value: ValueKind::StreetAddress,
        },
        ConceptSpec {
            key: "email",
            variants: &["email", "e-mail", "email address"],
            popularity: 0.7,
            value: ValueKind::Email,
        },
        ConceptSpec {
            key: "job",
            variants: &["job", "title", "job title", "position"],
            popularity: 1.0,
            value: ValueKind::FromPool(PoolId::JobTitles),
        },
        ConceptSpec {
            key: "organization",
            variants: &["organization", "organisation", "company", "employer"],
            popularity: 1.0,
            value: ValueKind::FromPool(PoolId::Companies),
        },
        ConceptSpec {
            key: "city",
            variants: &["city", "cities", "town"],
            popularity: 0.4,
            value: ValueKind::FromPool(PoolId::Cities),
        },
        ConceptSpec {
            key: "age",
            variants: &["age"],
            popularity: 0.3,
            value: ValueKind::IntRange {
                min: 18,
                max: 80,
                stringly: 0.0,
            },
        },
    ]
}

fn course() -> Vec<ConceptSpec> {
    vec![
        ConceptSpec {
            key: "course",
            variants: &["course", "course code", "class", "course no"],
            popularity: 1.0,
            value: ValueKind::CourseCode,
        },
        ConceptSpec {
            key: "title",
            variants: &["title", "titles"],
            popularity: 0.9,
            value: ValueKind::FromPool(PoolId::CourseSubjects),
        },
        ConceptSpec {
            key: "subject",
            variants: &["subject", "subjects"],
            popularity: 0.4,
            value: ValueKind::FromPool(PoolId::CourseSubjects),
        },
        ConceptSpec {
            key: "department",
            variants: &["department", "departments", "dept"],
            popularity: 0.6,
            value: ValueKind::FromPool(PoolId::Departments),
        },
        ConceptSpec {
            key: "instructor",
            variants: &["instructor", "instructors", "teacher", "lecturer"],
            popularity: 1.0,
            value: ValueKind::PersonName,
        },
        ConceptSpec {
            key: "credits",
            variants: &["credits", "credit hours", "units"],
            popularity: 0.6,
            value: ValueKind::IntRange {
                min: 1,
                max: 6,
                stringly: 0.3,
            },
        },
        // Stored as text by roughly half the web sources: the §7.3
        // Course-domain precision artifact (lexicographic "9" > "30").
        ConceptSpec {
            key: "enrollment",
            variants: &["enrollment", "enrolled", "students"],
            popularity: 0.5,
            value: ValueKind::IntRange {
                min: 5,
                max: 400,
                stringly: 0.5,
            },
        },
        ConceptSpec {
            key: "room",
            variants: &["room", "room no"],
            popularity: 0.5,
            value: ValueKind::IntRange {
                min: 100,
                max: 499,
                stringly: 0.2,
            },
        },
        ConceptSpec {
            key: "building",
            variants: &["building"],
            popularity: 0.3,
            value: ValueKind::FromPool(PoolId::Buildings),
        },
        ConceptSpec {
            key: "time",
            variants: &["time", "meeting time", "schedule"],
            popularity: 0.5,
            value: ValueKind::TimeSlot,
        },
        ConceptSpec {
            key: "semester",
            variants: &["semester", "term"],
            popularity: 0.4,
            value: ValueKind::FromPool(PoolId::Semesters),
        },
    ]
}

fn bib() -> Vec<ConceptSpec> {
    vec![
        ConceptSpec {
            key: "author",
            variants: &["author", "authors", "author(s)"],
            popularity: 1.0,
            value: ValueKind::PersonName,
        },
        ConceptSpec {
            key: "title",
            variants: &["title", "titles"],
            popularity: 1.0,
            value: ValueKind::TitleWords {
                pool: PoolId::MovieWords,
                min_words: 4,
                max_words: 8,
            },
        },
        ConceptSpec {
            key: "year",
            variants: &["year", "pub year"],
            popularity: 1.0,
            value: ValueKind::Year {
                min: 1970,
                max: 2008,
            },
        },
        ConceptSpec {
            key: "journal",
            variants: &["journal", "journal name", "conference"],
            popularity: 1.0,
            value: ValueKind::FromPool(PoolId::Journals),
        },
        ConceptSpec {
            key: "volume",
            variants: &["volume", "vol"],
            popularity: 0.6,
            value: ValueKind::IntRange {
                min: 1,
                max: 120,
                stringly: 0.2,
            },
        },
        // `issue` vs `issn`: Jaro–Winkler ≈ 0.848 — inside the τ ± ε band,
        // so Algorithm 1 generates exactly the two mediated schemas of
        // Figure 3 (merged vs separate).
        ConceptSpec {
            key: "issue",
            variants: &["issue"],
            popularity: 0.5,
            value: ValueKind::IntRange {
                min: 1,
                max: 12,
                stringly: 0.2,
            },
        },
        // `eissn` is a naming variant of the serial-number concept: both
        // Figure 3 schemas group `eissn` with `issn`, and so would a human
        // integrator.
        ConceptSpec {
            key: "issn",
            variants: &["issn", "eissn"],
            popularity: 0.45,
            value: ValueKind::Issn,
        },
        ConceptSpec {
            key: "pages",
            variants: &["pages", "pages/rec. no", "pp"],
            popularity: 0.7,
            value: ValueKind::Pages,
        },
        ConceptSpec {
            key: "publisher",
            variants: &["publisher", "publishers"],
            popularity: 0.3,
            value: ValueKind::FromPool(PoolId::Publishers),
        },
        // Biology/Chemistry skew of the web corpus (Example 4.2): organism
        // and link-to-pubmed occur in a large fraction of tables.
        ConceptSpec {
            key: "organism",
            variants: &["organism", "organisms"],
            popularity: 0.35,
            value: ValueKind::FromPool(PoolId::Organisms),
        },
        ConceptSpec {
            key: "pubmed",
            variants: &["link to pubmed", "pubmed"],
            popularity: 0.3,
            value: ValueKind::Url,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_source_counts() {
        assert_eq!(Domain::Movie.default_source_count(), 161);
        assert_eq!(Domain::Car.default_source_count(), 817);
        assert_eq!(Domain::People.default_source_count(), 49);
        assert_eq!(Domain::Course.default_source_count(), 647);
        assert_eq!(Domain::Bib.default_source_count(), 649);
    }

    #[test]
    fn every_domain_has_concepts_with_valid_popularity() {
        for d in Domain::all() {
            let cs = d.concepts();
            assert!(cs.len() >= 8, "{d:?} too small");
            for c in &cs {
                assert!((0.0..=1.0).contains(&c.popularity), "{}", c.key);
                assert!(!c.variants.is_empty(), "{}", c.key);
            }
            // At least one mandatory concept anchors every source.
            assert!(cs.iter().any(|c| c.popularity == 1.0), "{d:?}");
        }
    }

    #[test]
    fn required_groups_reference_real_concepts() {
        for d in Domain::all() {
            let keys: std::collections::HashSet<&str> =
                d.concepts().iter().map(|c| c.key).collect();
            for group in d.required_groups() {
                assert!(!group.is_empty(), "{d:?}");
                for k in *group {
                    assert!(keys.contains(k), "{d:?}: unknown concept {k}");
                }
            }
        }
    }

    #[test]
    fn concept_keys_are_unique_per_domain() {
        for d in Domain::all() {
            let cs = d.concepts();
            let keys: std::collections::HashSet<_> = cs.iter().map(|c| c.key).collect();
            assert_eq!(keys.len(), cs.len(), "{d:?}");
        }
    }

    #[test]
    fn people_domain_keeps_cross_concept_pairs_out_of_the_band() {
        use udi_similarity::{AttributeSimilarity, Similarity};
        let sim = AttributeSimilarity::default();
        let cs = Domain::People.concepts();
        // Only the two most common variants per concept become graph
        // nodes under the 10% frequency filter; rank-3 tails (like the
        // deliberately confusable `email address` of the paper's section 4.2
        // example) are allowed to collide.
        for a in &cs {
            for b in &cs {
                if a.key == b.key {
                    continue;
                }
                for va in a.variants.iter().take(2) {
                    for vb in b.variants.iter().take(2) {
                        let w = sim.similarity(va, vb);
                        assert!(
                            w < 0.83,
                            "cross-concept pair {va:?}~{vb:?} = {w:.3} reaches the band"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn people_domain_has_a_same_concept_uncertain_edge() {
        use udi_similarity::{AttributeSimilarity, Similarity};
        let sim = AttributeSimilarity::default();
        // `home phone` ~ `hphone` gives UDI its recall edge over SingleMed.
        let w = sim.similarity("home phone", "hphone");
        assert!((0.83..0.87).contains(&w), "got {w}");
    }

    #[test]
    fn bib_domain_has_figure_3_confusables() {
        use udi_similarity::jaro_winkler;
        let w = jaro_winkler("issue", "issn");
        assert!(
            (0.83..0.87).contains(&w),
            "issue~issn must be uncertain, got {w}"
        );
        let w2 = jaro_winkler("issn", "eissn");
        assert!(w2 >= 0.87, "issn~eissn must be certain, got {w2}");
    }
}

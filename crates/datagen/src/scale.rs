//! Massive-corpus stress generator for the `exp_scale` benchmark.
//!
//! The five Table 1 domains top out at 817 sources — the paper's scale.
//! Probing the blocked setup path at 10k–100k sources needs a corpus with
//! two properties the domain generator does not (and should not) have:
//!
//! 1. **A vocabulary that grows with the corpus.** Each concept has a
//!    per-source *style space* proportional to `n_sources`: half the
//!    sources use the canonical label, the other half a deterministic
//!    decoration of it, so the distinct-name count keeps growing instead
//!    of saturating. All-pairs scoring is quadratic-ish in that
//!    vocabulary; blocking is what keeps it linear.
//! 2. **Bigram-disjoint concepts.** Every concept's labels are built from
//!    a private two-letter alphabet, so labels of *different* concepts
//!    share no character bigram — not even the space-adjacent ones
//!    (`"a "` contains the letter). Cross-concept pairs are therefore
//!    provably prunable by `udi_similarity::BlockIndex`, mirroring real
//!    corpora where concept names come from different lexical fields. The
//!    labels look alien (`"abaab babba"`), but this is a *scale* stress
//!    corpus: setup only ever sees the statistics, never the semantics.
//!
//! Generation is **streaming**: [`scale_source`] is a pure function of
//! `(config, source index)` with its own per-source RNG, so a 100k-source
//! corpus never materializes an entity universe or an intermediate
//! `Vec<Table>` — only the catalog being filled holds memory.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use udi_store::{Catalog, Table, Value, DEFAULT_SHARD_CAPACITY};

/// Number of concepts in the scale corpus: 13 disjoint two-letter
/// alphabets cover the 26 lowercase letters exactly.
pub const SCALE_CONCEPTS: usize = 13;

/// Letter-pattern of each canonical-label token: `false` maps to the
/// concept's first letter, `true` to its second. Ten eight-letter tokens
/// make ~89-character labels — long enough that pairwise scoring
/// (token-hybrid over all token pairs) is expensive. That cost is the
/// point: the all-pairs path pays it for every (vocabulary × cluster)
/// pair, the blocked path only within a concept, so label length is the
/// knob that makes the difference measurable above per-source pipeline
/// overhead.
const TOKEN_PATTERNS: [[bool; 8]; 10] = [
    [false, true, false, false, true, true, false, true],
    [true, false, true, true, false, false, true, false],
    [false, false, true, true, false, true, false, false],
    [true, true, false, false, true, false, true, true],
    [false, true, true, false, false, true, true, false],
    [true, false, false, true, true, false, false, true],
    [false, false, false, true, false, true, true, true],
    [true, true, true, false, true, false, false, false],
    [false, true, false, true, true, false, true, false],
    [true, false, true, false, false, true, false, true],
];

/// Configuration of the scale corpus. Every artifact is a pure function
/// of this struct, and every *source* is a pure function of
/// `(config, index)` — the property the streaming iterator relies on.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Number of sources to generate.
    pub n_sources: usize,
    /// Master seed.
    pub seed: u64,
    /// Minimum rows per source.
    pub rows_min: usize,
    /// Maximum rows per source.
    pub rows_max: usize,
    /// Probability that a source labels a concept with a decorated
    /// variant instead of the canonical label. The remainder keeps the
    /// canonical label frequent enough to clear the θ = 0.10 filter.
    pub decorate_rate: f64,
    /// Probability that a cell is NULL.
    pub null_rate: f64,
    /// Shard capacity [`scale_catalog`] builds the catalog with.
    pub shard_capacity: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            n_sources: 1_000,
            seed: 0x5CA1_E5ED,
            rows_min: 100,
            rows_max: 200,
            decorate_rate: 0.5,
            null_rate: 0.02,
            shard_capacity: DEFAULT_SHARD_CAPACITY,
        }
    }
}

impl ScaleConfig {
    /// A scale configuration for `n` sources with the default knobs.
    pub fn with_sources(n: usize) -> Self {
        ScaleConfig {
            n_sources: n,
            ..ScaleConfig::default()
        }
    }

    /// Per-concept decoration-style space. Proportional to the corpus so
    /// the vocabulary keeps growing with it (see the module docs); floored
    /// so tiny test corpora still exercise decoration variety.
    pub fn style_space(&self) -> usize {
        self.n_sources.max(16)
    }
}

/// The two private letters of concept `c`.
fn alphabet(c: usize) -> (char, char) {
    debug_assert!(c < SCALE_CONCEPTS);
    let base = b'a' + (2 * c) as u8;
    (base as char, (base + 1) as char)
}

/// Popularity of concept `c`, spread over `[0.25, 0.6]`. The floor keeps
/// every canonical label's frequency (popularity × canonical share) above
/// the θ = 0.10 filter with margin.
fn popularity(c: usize) -> f64 {
    0.25 + 0.35 * c as f64 / (SCALE_CONCEPTS - 1) as f64
}

/// Render token-pattern `p` in concept `c`'s alphabet.
fn token(c: usize, p: usize) -> String {
    let (lo, hi) = alphabet(c);
    TOKEN_PATTERNS
        .get(p % TOKEN_PATTERNS.len())
        .map(|pat| pat.as_slice())
        .unwrap_or_default()
        .iter()
        .map(|&bit| if bit { hi } else { lo })
        .collect()
}

/// The canonical label of concept `c`: one token per pattern, all in its
/// private alphabet.
pub fn canonical_label(c: usize) -> String {
    let tokens: Vec<String> = (0..TOKEN_PATTERNS.len()).map(|p| token(c, p)).collect();
    tokens.join(" ")
}

/// SplitMix64 — decorrelates consecutive source indices before they
/// become `StdRng` seeds.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The decorated variant of concept `c` in style `s`. A pure function of
/// `(c, s)`, so every source drawing the same style produces the *same*
/// string and the vocabulary is bounded by the style space. Decorations
/// only rearrange material from the concept's own alphabet, preserving
/// cross-concept bigram disjointness.
pub fn decorated_label(c: usize, s: usize) -> String {
    let mut tokens: Vec<String> = (0..TOKEN_PATTERNS.len()).map(|p| token(c, p)).collect();
    let mut ops = 1 + s % 2;
    let mut roll = mix(s as u64 ^ 0xDEC0);
    while ops > 0 {
        ops -= 1;
        let pick = roll % 4;
        roll = mix(roll);
        let at = (roll % tokens.len() as u64) as usize;
        roll = mix(roll);
        match pick {
            // Append one more alphabet token.
            0 => tokens.push(token(c, (roll % TOKEN_PATTERNS.len() as u64) as usize)),
            // Swap two adjacent tokens.
            1 => {
                let with = (at + 1) % tokens.len();
                tokens.swap(at, with);
            }
            // Double a letter inside one token.
            2 => {
                if let Some(t) = tokens.get_mut(at) {
                    let pos = (roll % t.len() as u64) as usize;
                    let ch = t.as_bytes().get(pos).copied().unwrap_or(b'a') as char;
                    t.push(ch);
                }
            }
            // Fuse a token with its neighbour (drop the space).
            _ => {
                let next = tokens.remove((at + 1) % tokens.len());
                let into = at.min(tokens.len() - 1);
                if let Some(t) = tokens.get_mut(into) {
                    t.push_str(&next);
                }
            }
        }
        roll = mix(roll);
    }
    tokens.join(" ")
}

/// Generate source `i` of the corpus — a pure function of `(cfg, i)`.
pub fn scale_source(cfg: &ScaleConfig, i: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ mix(i as u64));

    // 1. Concepts this source covers (at least two).
    let mut chosen: Vec<usize> = (0..SCALE_CONCEPTS)
        .filter(|&c| rng.gen_bool(popularity(c)))
        .collect();
    if chosen.len() < 2 {
        chosen = vec![0, 1];
    }

    // 2. Label each concept: canonical or a style-space decoration.
    let style_space = cfg.style_space();
    let attrs: Vec<(usize, String)> = chosen
        .iter()
        .map(|&c| {
            let label = if rng.gen_bool(cfg.decorate_rate) {
                decorated_label(c, rng.gen_range(0..style_space))
            } else {
                canonical_label(c)
            };
            (c, label)
        })
        .collect();

    // 3. Rows. No shared entity universe — the scale corpus measures
    // setup, not cross-source recall — so cells are sampled directly.
    // Mostly integers to keep a 100k-source corpus inside the memory
    // budget; every third concept stores short text.
    let n_rows = rng.gen_range(cfg.rows_min..=cfg.rows_max);
    let mut table = Table::new(
        format!("scale_{i:06}"),
        attrs.iter().map(|(_, a)| a.clone()),
    );
    for _ in 0..n_rows {
        let row: Vec<Value> = attrs
            .iter()
            .map(|&(c, _)| {
                if rng.gen_bool(cfg.null_rate) {
                    Value::Null
                } else if c % 3 == 0 {
                    Value::Text(format!("{}{}", token(c, 0), rng.gen_range(0..10_000)))
                } else {
                    Value::Int(rng.gen_range(0..1_000_000))
                }
            })
            .collect();
        // udi-audit: allow(panic-reachability, "row is built by mapping the table's own attrs, so the arity always matches")
        table.push_row(row).expect("arity by construction");
    }
    table
}

/// Stream the corpus one source at a time.
pub fn scale_corpus(cfg: &ScaleConfig) -> impl Iterator<Item = Table> + '_ {
    (0..cfg.n_sources).map(move |i| scale_source(cfg, i))
}

/// Stream the corpus into a sharded [`Catalog`] (capacity
/// [`ScaleConfig::shard_capacity`]). Peak memory is the catalog itself —
/// no intermediate collection exists.
pub fn scale_catalog(cfg: &ScaleConfig) -> Catalog {
    let mut catalog = Catalog::with_shard_capacity(cfg.shard_capacity);
    for table in scale_corpus(cfg) {
        // `n_sources` is a usize config but ids are u32; stop streaming at
        // the id-space boundary rather than truncate ids.
        if catalog.add_source(table).is_err() {
            break;
        }
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeSet, HashSet};

    #[test]
    fn sources_are_pure_functions_of_config_and_index() {
        let cfg = ScaleConfig::with_sources(50);
        for i in [0, 7, 49] {
            let a = scale_source(&cfg, i);
            let b = scale_source(&cfg, i);
            assert_eq!(a.attributes(), b.attributes());
            assert_eq!(a.to_rows(), b.to_rows());
        }
        // The stream agrees with random access.
        let third = scale_corpus(&cfg).nth(3).unwrap();
        assert_eq!(third.attributes(), scale_source(&cfg, 3).attributes());
    }

    #[test]
    fn respects_row_bounds_and_minimum_arity() {
        let cfg = ScaleConfig {
            n_sources: 30,
            rows_min: 5,
            rows_max: 9,
            ..ScaleConfig::default()
        };
        for t in scale_corpus(&cfg) {
            assert!((5..=9).contains(&t.row_count()), "{}", t.name());
            assert!(t.arity() >= 2, "{}", t.name());
        }
    }

    #[test]
    fn concepts_use_disjoint_letter_alphabets() {
        // Disjoint letters imply disjoint character bigrams (space- and
        // padding-adjacent bigrams contain a letter), which is what makes
        // cross-concept pairs prunable by the block index.
        let mut seen = BTreeSet::new();
        for c in 0..SCALE_CONCEPTS {
            let mut letters: BTreeSet<char> = canonical_label(c).chars().collect();
            for s in 0..40 {
                letters.extend(decorated_label(c, s).chars());
            }
            letters.remove(&' ');
            assert!(letters.iter().all(|ch| ch.is_ascii_lowercase()));
            assert!(
                letters.is_disjoint(&seen),
                "concept {c} shares letters: {letters:?}"
            );
            seen.extend(letters);
        }
    }

    #[test]
    fn decorations_grow_the_vocabulary_with_the_corpus() {
        let names = |n: usize| -> HashSet<String> {
            scale_corpus(&ScaleConfig::with_sources(n))
                .flat_map(|t| t.attributes().to_vec())
                .collect()
        };
        let small = names(100);
        let large = names(400);
        assert!(small.len() > SCALE_CONCEPTS);
        assert!(
            large.len() > small.len(),
            "{} !> {}",
            large.len(),
            small.len()
        );
    }

    #[test]
    fn canonical_labels_clear_the_frequency_filter() {
        let cfg = ScaleConfig {
            n_sources: 400,
            rows_min: 1,
            rows_max: 1,
            ..ScaleConfig::default()
        };
        let catalog = scale_catalog(&cfg);
        for c in 0..SCALE_CONCEPTS {
            let f = catalog.attribute_frequency(&canonical_label(c));
            assert!(f > 0.10, "concept {c} frequency {f}");
        }
    }

    #[test]
    fn catalog_streams_into_shards_of_the_configured_capacity() {
        let cfg = ScaleConfig {
            n_sources: 20,
            rows_min: 1,
            rows_max: 2,
            shard_capacity: 8,
            ..ScaleConfig::default()
        };
        let catalog = scale_catalog(&cfg);
        assert_eq!(catalog.source_count(), 20);
        assert_eq!(catalog.shard_count(), 3);
        assert_eq!(catalog.shard_ranges(), vec![0..8, 8..16, 16..20]);
    }
}

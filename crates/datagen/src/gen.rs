//! The corpus generator: entity universe + heterogeneous source projection.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use udi_store::{Catalog, Table, Value};

use crate::spec::{ConceptSpec, Domain};
use crate::truth::GroundTruth;
use crate::value::ValueKind;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of sources; `None` uses the domain's Table 1 count.
    pub n_sources: Option<usize>,
    /// Master seed; every artifact is a pure function of `(domain, config)`.
    pub seed: u64,
    /// Number of distinct entities in the domain universe. Sources sample
    /// from a shared universe, so the same entity shows up in several
    /// sources (which is what makes cross-source recall meaningful).
    pub universe_size: usize,
    /// Minimum rows per source ("tens to a few hundreds of tuples").
    pub rows_min: usize,
    /// Maximum rows per source.
    pub rows_max: usize,
    /// Probability that a cell is NULL (web-table sparsity).
    pub null_rate: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            n_sources: None,
            seed: 0x5EED_2008,
            universe_size: 300,
            rows_min: 10,
            rows_max: 120,
            null_rate: 0.02,
        }
    }
}

/// A generated domain corpus: the source catalog plus exact ground truth.
#[derive(Debug)]
pub struct GeneratedDomain {
    /// Which domain this is.
    pub domain: Domain,
    /// The concept inventory the corpus was generated from (usually
    /// `domain.concepts()`, but custom inventories are supported for
    /// stress experiments).
    pub concepts: Vec<ConceptSpec>,
    /// The source tables.
    pub catalog: Catalog,
    /// Attribute→concept oracle.
    pub truth: GroundTruth,
}

/// Generate a domain corpus deterministically from the seed.
pub fn generate(domain: Domain, cfg: &GenConfig) -> GeneratedDomain {
    generate_with_concepts(domain, domain.concepts(), cfg)
}

/// Generate a corpus from a custom concept inventory (e.g. the Example 2.1
/// ambiguity stress corpus), labeled as `domain` for bookkeeping.
pub fn generate_with_concepts(
    domain: Domain,
    concepts: Vec<ConceptSpec>,
    cfg: &GenConfig,
) -> GeneratedDomain {
    assert!(
        cfg.rows_min >= 1 && cfg.rows_min <= cfg.rows_max,
        "bad row range"
    );
    assert!(
        cfg.universe_size >= cfg.rows_max,
        "universe must cover the largest source"
    );
    assert!(!concepts.is_empty(), "need at least one concept");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ domain_salt(domain));
    let n_sources = cfg
        .n_sources
        .unwrap_or_else(|| domain.default_source_count());

    // Entity universe: one value per (entity, concept). Stringly conversion
    // happens per source, so generate pure numerics here.
    let universe: Vec<Vec<Value>> = (0..cfg.universe_size)
        .map(|_| {
            concepts
                .iter()
                .map(|c| purify(c.value).generate(&mut rng))
                .collect()
        })
        .collect();

    let mut catalog = Catalog::new();
    let mut per_source_truth: Vec<BTreeMap<String, String>> = Vec::with_capacity(n_sources);
    let entity_indices: Vec<usize> = (0..cfg.universe_size).collect();

    let required = domain.required_groups();
    for s in 0..n_sources {
        // 1. Pick the concepts this source covers.
        let mut chosen: Vec<usize> = (0..concepts.len())
            .filter(|&i| {
                let pop = concepts.get(i).map(|c| c.popularity).unwrap_or(0.0);
                rng.gen_bool(pop)
            })
            .collect();
        if chosen.len() < 2 {
            chosen = vec![0, 1.min(concepts.len() - 1)];
            chosen.dedup();
        }
        // Enforce the Table 1 keyword filter: the paper's corpus only
        // contains tables matching the domain keywords, so every source
        // covers at least one concept from each required group. (Custom
        // inventories may not know the groups' keys; missing keys are
        // ignored.)
        for group in required {
            let satisfied = chosen
                .iter()
                .any(|&i| concepts.get(i).is_some_and(|c| group.contains(&c.key)));
            if !satisfied {
                if let Some(pick) = group
                    .iter()
                    .filter_map(|k| concepts.iter().position(|c| c.key == *k))
                    .max_by(|&a, &b| {
                        let pa = concepts.get(a).map(|c| c.popularity).unwrap_or(0.0);
                        let pb = concepts.get(b).map(|c| c.popularity).unwrap_or(0.0);
                        pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                {
                    chosen.push(pick);
                    chosen.sort_unstable();
                    chosen.dedup();
                }
            }
        }

        // 2. Pick one attribute-name variant per concept, avoiding
        // duplicate names within the source (two concepts may share a
        // variant like `phone`; only one of them can use it here).
        let mut attrs: Vec<(usize, String)> = Vec::with_capacity(chosen.len());
        let mut used: Vec<&str> = Vec::new();
        for &ci in &chosen {
            let Some(c) = concepts.get(ci) else { continue };
            if let Some(v) = pick_variant(c, &used, &mut rng) {
                used.push(v);
                attrs.push((ci, v.to_owned()));
            }
            // All variants taken → the concept is skipped for this source.
        }

        // 3. Decide per-source stringly storage for numeric concepts.
        let stringly: Vec<bool> = attrs
            .iter()
            .map(|&(ci, _)| match concepts.get(ci).map(|c| c.value) {
                Some(ValueKind::IntRange { stringly, .. }) => rng.gen_bool(stringly),
                _ => false,
            })
            .collect();

        // 4. Sample entities and project them onto the chosen concepts.
        let n_rows = rng.gen_range(cfg.rows_min..=cfg.rows_max);
        let rows: Vec<usize> = entity_indices
            .choose_multiple(&mut rng, n_rows)
            .copied()
            .collect();
        let mut table = Table::new(
            format!("{}_{s:03}", domain.name().to_lowercase()),
            attrs.iter().map(|(_, a)| a.clone()),
        );
        for &e in &rows {
            let row: Vec<Value> = attrs
                .iter()
                .zip(&stringly)
                .map(|(&(ci, _), &as_text)| {
                    if rng.gen_bool(cfg.null_rate) {
                        return Value::Null;
                    }
                    let v = universe
                        .get(e)
                        .and_then(|row| row.get(ci))
                        .cloned()
                        .unwrap_or(Value::Null);
                    if as_text {
                        Value::Text(v.to_string())
                    } else {
                        v
                    }
                })
                .collect();
            // udi-audit: allow(panic-reachability, "row is built by mapping the table's own attrs, so the arity always matches")
            table.push_row(row).expect("arity by construction");
        }
        // Generated corpora are bounded far below the u32 id space; if
        // registration is ever refused the loop stops emitting instead of
        // desynchronizing the catalog from the per-source ground truth.
        if catalog.add_source(table).is_err() {
            break;
        }
        per_source_truth.push(
            attrs
                .into_iter()
                .map(|(ci, a)| {
                    let key = concepts
                        .get(ci)
                        .map(|c| c.key.to_owned())
                        .unwrap_or_default();
                    (a, key)
                })
                .collect(),
        );
    }

    let truth = GroundTruth::new(
        per_source_truth,
        concepts.iter().map(|c| c.key.to_owned()).collect(),
    );
    GeneratedDomain {
        domain,
        concepts,
        catalog,
        truth,
    }
}

/// Variant weights decay as `1/(rank+1)`: the canonical label is the most
/// common but alternatives remain well represented — the heterogeneity that
/// separates UDI (which clusters the variants) from the `Source` baseline
/// (which needs exact matches).
fn pick_variant<'a>(c: &ConceptSpec, used: &[&str], rng: &mut StdRng) -> Option<&'a str>
where
    'static: 'a,
{
    // Each variant carries its rank through the filter, so the weight
    // needs no second scan over `c.variants`.
    let available: Vec<(usize, &'static str)> = c
        .variants
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, v)| !used.contains(v))
        .collect();
    if available.is_empty() {
        return None;
    }
    let weights: Vec<f64> = available
        .iter()
        .map(|&(rank, _)| 1.0 / (rank + 1) as f64)
        .collect();
    let total: f64 = weights.iter().sum();
    let mut roll = rng.gen_range(0.0..total);
    for (&(_, v), w) in available.iter().zip(&weights) {
        if roll < *w {
            return Some(v);
        }
        roll -= w;
    }
    available.last().map(|&(_, v)| v)
}

/// Strip per-source randomness from the universe generator (stringly
/// storage is a per-source property, not a per-entity one).
fn purify(v: ValueKind) -> ValueKind {
    match v {
        ValueKind::IntRange { min, max, .. } => ValueKind::IntRange {
            min,
            max,
            stringly: 0.0,
        },
        other => other,
    }
}

fn domain_salt(d: Domain) -> u64 {
    match d {
        Domain::Movie => 0x4d4f,
        Domain::Car => 0x4341,
        Domain::People => 0x5045,
        Domain::Course => 0x434f,
        Domain::Bib => 0x4249,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(domain: Domain, n: usize) -> GeneratedDomain {
        generate(
            domain,
            &GenConfig {
                n_sources: Some(n),
                ..GenConfig::default()
            },
        )
    }

    #[test]
    fn respects_source_count_and_row_bounds() {
        let g = small(Domain::Movie, 40);
        assert_eq!(g.catalog.source_count(), 40);
        for (_, t) in g.catalog.iter_sources() {
            assert!((10..=120).contains(&t.row_count()), "{}", t.name());
            assert!(t.arity() >= 2);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small(Domain::Bib, 20);
        let b = small(Domain::Bib, 20);
        for ((_, ta), (_, tb)) in a.catalog.iter_sources().zip(b.catalog.iter_sources()) {
            assert_eq!(ta.attributes(), tb.attributes());
            assert_eq!(ta.to_rows(), tb.to_rows());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small(Domain::Car, 10);
        let b = generate(
            Domain::Car,
            &GenConfig {
                n_sources: Some(10),
                seed: 999,
                ..GenConfig::default()
            },
        );
        let schema_a: Vec<Vec<String>> = a
            .catalog
            .iter_sources()
            .map(|(_, t)| t.attributes().to_vec())
            .collect();
        let schema_b: Vec<Vec<String>> = b
            .catalog
            .iter_sources()
            .map(|(_, t)| t.attributes().to_vec())
            .collect();
        assert_ne!(schema_a, schema_b);
    }

    #[test]
    fn every_source_satisfies_the_table_1_keyword_filter() {
        for domain in Domain::all() {
            let g = small(domain, 50);
            for src in 0..50 {
                for group in domain.required_groups() {
                    assert!(
                        group
                            .iter()
                            .any(|k| g.truth.source_attr_for(src, k).is_some()),
                        "{domain:?} source {src} violates required group {group:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn truth_covers_every_attribute() {
        let g = small(Domain::Course, 30);
        for (sid, t) in g.catalog.iter_sources() {
            for a in t.attributes() {
                assert!(
                    g.truth.source_concept(sid.0 as usize, a).is_some(),
                    "source {sid} attr {a}"
                );
            }
        }
    }

    #[test]
    fn canonical_variant_is_frequent() {
        let g = small(Domain::Bib, 100);
        // `author` must clear the 10% frequency threshold by a wide margin.
        assert!(g.catalog.attribute_frequency("author") > 0.4);
        // Mandatory concepts are present in every source under some name.
        for src in 0..100 {
            assert!(
                g.truth.source_attr_for(src, "author").is_some(),
                "source {src}"
            );
        }
    }

    #[test]
    fn sources_share_entities() {
        let g = small(Domain::Movie, 12);
        // Count distinct titles across sources; with a 300-entity universe
        // and 12 sources × ≥10 rows there must be collisions.
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for (sid, t) in g.catalog.iter_sources() {
            let Some(attr) = g.truth.source_attr_for(sid.0 as usize, "movie") else {
                continue;
            };
            let col = t.attribute_index(attr).unwrap();
            let mut seen = std::collections::HashSet::new();
            for v in t.column(col).unwrap() {
                if let Value::Text(s) = v {
                    if seen.insert(s.clone()) {
                        *counts.entry(s.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
        assert!(
            counts.values().any(|&c| c >= 2),
            "some movie must appear in two sources"
        );
    }

    #[test]
    fn people_benchmark_corpus_has_no_per_source_ambiguity() {
        // Genuine shared-label ambiguity is exercised by the hand-built
        // Example 2.1 fixtures, not the benchmark corpus (see spec.rs).
        let g = small(Domain::People, 60);
        for name in g.truth.attribute_names() {
            assert!(!g.truth.is_ambiguous(name), "{name} is ambiguous");
        }
    }

    #[test]
    fn no_duplicate_attribute_names_within_a_source() {
        let g = small(Domain::People, 80);
        for (_, t) in g.catalog.iter_sources() {
            let set: std::collections::HashSet<_> = t.attributes().iter().collect();
            assert_eq!(set.len(), t.arity(), "{}", t.name());
        }
    }

    #[test]
    fn stringly_enrollment_exists_in_course() {
        let g = small(Domain::Course, 80);
        let mut text = 0;
        let mut int = 0;
        for (sid, t) in g.catalog.iter_sources() {
            let Some(attr) = g.truth.source_attr_for(sid.0 as usize, "enrollment") else {
                continue;
            };
            let col = t.attribute_index(attr).unwrap();
            for v in t.column(col).unwrap() {
                match v {
                    Value::Text(_) => text += 1,
                    Value::Int(_) => int += 1,
                    _ => {}
                }
            }
        }
        assert!(text > 0, "some sources must store enrollment as text");
        assert!(int > 0, "some sources must store enrollment as numbers");
    }
}

//! Ground truth retained by the generator — the oracle standing in for the
//! paper's manual integration effort.

use std::collections::{BTreeMap, BTreeSet};

/// Ground truth for one generated domain corpus.
///
/// The paper's authors built golden standards by hand ("we constructed a
/// golden standard by manually creating mediated schemas and schema
/// mappings"). Our generator *knows* the concept behind every attribute of
/// every source, so the golden standard is exact — including for ambiguous
/// labels like `phone`, whose concept differs per source.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// `per_source[src]`: attribute name → concept key.
    per_source: Vec<BTreeMap<String, String>>,
    /// All concept keys of the domain.
    concepts: Vec<String>,
}

impl GroundTruth {
    /// Build from per-source attribute→concept maps.
    pub fn new(per_source: Vec<BTreeMap<String, String>>, concepts: Vec<String>) -> GroundTruth {
        GroundTruth {
            per_source,
            concepts,
        }
    }

    /// Number of sources covered.
    pub fn source_count(&self) -> usize {
        self.per_source.len()
    }

    /// The domain's concept keys.
    pub fn concepts(&self) -> &[String] {
        &self.concepts
    }

    /// The concept of `attr` in source `src`.
    pub fn source_concept(&self, src: usize, attr: &str) -> Option<&str> {
        self.per_source.get(src)?.get(attr).map(String::as_str)
    }

    /// The attribute of source `src` carrying `concept`, if any (unique by
    /// construction: a source has at most one attribute per concept).
    pub fn source_attr_for(&self, src: usize, concept: &str) -> Option<&str> {
        self.per_source
            .get(src)?
            .iter()
            .find(|(_, c)| c.as_str() == concept)
            .map(|(a, _)| a.as_str())
    }

    /// All concepts an attribute name denotes anywhere in the corpus.
    /// More than one element means the name is genuinely ambiguous.
    pub fn concepts_of(&self, attr: &str) -> BTreeSet<&str> {
        self.per_source
            .iter()
            .filter_map(|m| m.get(attr))
            .map(String::as_str)
            .collect()
    }

    /// Whether `attr` denotes different concepts in different sources.
    pub fn is_ambiguous(&self, attr: &str) -> bool {
        self.concepts_of(attr).len() > 1
    }

    /// All attribute names appearing in the corpus.
    pub fn attribute_names(&self) -> BTreeSet<&str> {
        self.per_source
            .iter()
            .flat_map(|m| m.keys())
            .map(String::as_str)
            .collect()
    }

    /// Golden clustering of the given attribute names by concept. Ambiguous
    /// names (shared by several concepts) are excluded — no single
    /// clustering of the *name* is correct for them, which is precisely the
    /// uncertainty p-med-schemas exist to model.
    pub fn golden_clusters(&self, attrs: &[&str]) -> Vec<BTreeSet<String>> {
        let mut by_concept: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        for &a in attrs {
            let cs = self.concepts_of(a);
            if cs.len() == 1 {
                if let Some(c) = cs.into_iter().next() {
                    by_concept.entry(c).or_default().insert(a.to_owned());
                }
            }
        }
        by_concept.into_values().collect()
    }

    /// Whether two attribute names certainly denote the same concept
    /// (unambiguous and equal concepts).
    pub fn same_concept(&self, a: &str, b: &str) -> Option<bool> {
        let ca = self.concepts_of(a);
        let cb = self.concepts_of(b);
        if ca.len() != 1 || cb.len() != 1 {
            return None; // Ambiguous: no crisp golden answer.
        }
        Some(ca == cb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        let mk = |pairs: &[(&str, &str)]| -> BTreeMap<String, String> {
            pairs
                .iter()
                .map(|&(a, c)| (a.to_owned(), c.to_owned()))
                .collect()
        };
        GroundTruth::new(
            vec![
                mk(&[("name", "name"), ("phone", "home phone")]),
                mk(&[
                    ("name", "name"),
                    ("phone", "office phone"),
                    ("hphone", "home phone"),
                ]),
                mk(&[("full name", "name")]),
            ],
            vec!["name".into(), "home phone".into(), "office phone".into()],
        )
    }

    #[test]
    fn per_source_lookups() {
        let t = truth();
        assert_eq!(t.source_concept(0, "phone"), Some("home phone"));
        assert_eq!(t.source_concept(1, "phone"), Some("office phone"));
        assert_eq!(t.source_concept(0, "missing"), None);
        assert_eq!(t.source_concept(9, "phone"), None);
        assert_eq!(t.source_attr_for(1, "home phone"), Some("hphone"));
        assert_eq!(t.source_attr_for(2, "name"), Some("full name"));
        assert_eq!(t.source_attr_for(2, "home phone"), None);
    }

    #[test]
    fn ambiguity_detection() {
        let t = truth();
        assert!(t.is_ambiguous("phone"));
        assert!(!t.is_ambiguous("name"));
        assert_eq!(t.concepts_of("phone").len(), 2);
        assert_eq!(t.same_concept("name", "full name"), Some(true));
        assert_eq!(t.same_concept("name", "hphone"), Some(false));
        assert_eq!(t.same_concept("phone", "hphone"), None, "ambiguous side");
    }

    #[test]
    fn golden_clusters_skip_ambiguous_names() {
        let t = truth();
        let clusters = t.golden_clusters(&["name", "full name", "phone", "hphone"]);
        // phone excluded; {name, full name} together; {hphone} alone.
        assert_eq!(clusters.len(), 2);
        let all: BTreeSet<&str> = clusters.iter().flatten().map(String::as_str).collect();
        assert!(!all.contains("phone"));
        assert!(clusters
            .iter()
            .any(|c| c.contains("name") && c.contains("full name")));
    }

    #[test]
    fn attribute_names_union() {
        let t = truth();
        let names = t.attribute_names();
        assert_eq!(
            names,
            ["full name", "hphone", "name", "phone"]
                .into_iter()
                .collect()
        );
    }
}

//! Static word pools used by the value generators.
//!
//! The pools are intentionally mundane: the algorithms under test only see
//! attribute *names* during setup, and cell values only matter for query
//! answering (overlap across sources, selectivity of predicates, the
//! occasional stringly-typed number).

/// Identifier of a word pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolId {
    /// Person first names.
    FirstNames,
    /// Person last names.
    LastNames,
    /// Street names for addresses.
    Streets,
    /// City names.
    Cities,
    /// Company / organization names.
    Companies,
    /// Words composing movie titles.
    MovieWords,
    /// Movie genres.
    Genres,
    /// Movie studios.
    Studios,
    /// Car manufacturers.
    CarMakes,
    /// Car model names.
    CarModels,
    /// Car colors.
    Colors,
    /// Transmission kinds.
    Transmissions,
    /// Fuel kinds.
    Fuels,
    /// Course subject words.
    CourseSubjects,
    /// Academic departments.
    Departments,
    /// Campus buildings.
    Buildings,
    /// Semester labels.
    Semesters,
    /// Journal names.
    Journals,
    /// Publishers.
    Publishers,
    /// Model organisms (the Bib corpus skews biology/chemistry, which is
    /// why Figure 3 contains `organism` and `link to pubmed`).
    Organisms,
    /// Job titles.
    JobTitles,
    /// Languages.
    Languages,
    /// Countries.
    Countries,
}

/// The words behind a pool id.
pub fn pool(id: PoolId) -> &'static [&'static str] {
    match id {
        PoolId::FirstNames => &[
            "Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Henry", "Irene",
            "James", "Karen", "Louis", "Maria", "Nathan", "Olivia", "Peter", "Quinn", "Rachel",
            "Samuel", "Teresa", "Ulrich", "Victor", "Wendy", "Xavier", "Yvonne", "Zachary",
            "Amara", "Bruno", "Chen", "Dmitri", "Elena", "Farid", "Gita", "Hiro", "Ines",
            "Jorge", "Kasia", "Liam", "Mei", "Noor",
        ],
        PoolId::LastNames => &[
            "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
            "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
            "Thomas", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson",
            "White", "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker",
            "Young", "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
        ],
        PoolId::Streets => &[
            "Maple Ave", "Oak St", "Pine Rd", "Cedar Ln", "Elm Dr", "Birch Way", "Walnut St",
            "Chestnut Ave", "Spruce Ct", "Willow Rd", "Aspen Pl", "Juniper Blvd", "Magnolia St",
            "Sycamore Ave", "Poplar Ln", "Hickory Dr", "Laurel Way", "Cypress Rd", "Alder Ct",
            "Hazel St", "Main St", "First Ave", "Second St", "Third Blvd", "Park Rd",
            "Lake Dr", "River Ln", "Hilltop Way", "Sunset Blvd", "Harbor St",
        ],
        PoolId::Cities => &[
            "Springfield", "Riverton", "Fairview", "Georgetown", "Salem", "Madison",
            "Arlington", "Ashland", "Burlington", "Clayton", "Dayton", "Dover", "Franklin",
            "Greenville", "Hudson", "Kingston", "Lebanon", "Milton", "Newport", "Oxford",
            "Princeton", "Quincy", "Richmond", "Stanford", "Trenton", "Union", "Vernon",
            "Winchester", "York", "Zion",
        ],
        PoolId::Companies => &[
            "Acme Corp", "Globex", "Initech", "Umbrella LLC", "Stark Industries",
            "Wayne Enterprises", "Wonka Inc", "Tyrell Corp", "Cyberdyne", "Soylent Co",
            "Hooli", "Pied Piper", "Dunder Mifflin", "Vandelay Industries", "Oceanic Air",
            "Massive Dynamic", "Aperture Labs", "Black Mesa", "Virtucon", "Zorg Industries",
            "Nakatomi Trading", "Gringotts", "Monarch Solutions", "Abstergo", "InGen",
            "Weyland Corp", "Rekall", "Omni Consumer", "Buy n Large", "MomCorp",
        ],
        PoolId::MovieWords => &[
            "Midnight", "Shadow", "River", "Last", "First", "Broken", "Silent", "Golden",
            "Crimson", "Winter", "Summer", "Lost", "Hidden", "Eternal", "Falling", "Rising",
            "Distant", "Burning", "Frozen", "Savage", "Gentle", "Iron", "Glass", "Paper",
            "Stone", "Star", "Moon", "Sun", "Ocean", "Desert", "Forest", "City", "Empire",
            "Kingdom", "Garden", "Station", "Harbor", "Bridge", "Tower", "Valley", "Echo",
            "Whisper", "Promise", "Secret", "Journey", "Return", "Escape", "Dream", "Storm",
            "Dawn",
        ],
        PoolId::Genres => &[
            "Drama", "Comedy", "Thriller", "Horror", "Romance", "Action", "Adventure",
            "Documentary", "Animation", "Fantasy", "Science Fiction", "Mystery", "Crime",
            "Western", "Musical",
        ],
        PoolId::Studios => &[
            "Silverlight Pictures", "Northstar Films", "Bluebird Studios", "Cascade Media",
            "Ember Entertainment", "Horizon Pictures", "Lantern Films", "Meridian Studios",
            "Pinnacle Pictures", "Quartz Films", "Redwood Media", "Summit Reel",
            "Tidewater Films", "Vista Grande", "Zenith Pictures",
        ],
        PoolId::CarMakes => &[
            "Toyota", "Honda", "Ford", "Chevrolet", "Nissan", "BMW", "Mercedes", "Audi",
            "Volkswagen", "Subaru", "Mazda", "Hyundai", "Kia", "Volvo", "Lexus", "Acura",
            "Infiniti", "Jeep", "Dodge", "Chrysler", "Buick", "Cadillac", "GMC", "Porsche",
            "Fiat",
        ],
        PoolId::CarModels => &[
            "Falcon", "Comet", "Ranger", "Summit", "Breeze", "Pioneer", "Voyager", "Raptor",
            "Stratus", "Eclipse", "Aurora", "Mirage", "Tempest", "Nomad", "Scout", "Drifter",
            "Phantom", "Spirit", "Legend", "Quest", "Blazer", "Canyon", "Delta", "Edge",
            "Flash", "Glide", "Horizon", "Impulse", "Jet", "Kestrel", "Lancer", "Meteor",
            "Nova", "Orbit", "Pulse", "Quasar", "Rogue", "Sprint", "Titan", "Vector",
        ],
        PoolId::Colors => &[
            "Black", "White", "Silver", "Gray", "Red", "Blue", "Green", "Beige", "Brown",
            "Gold", "Orange", "Yellow", "Purple", "Maroon", "Navy",
        ],
        PoolId::Transmissions => &["Automatic", "Manual", "CVT", "Dual-Clutch"],
        PoolId::Fuels => &["Gasoline", "Diesel", "Hybrid", "Electric", "Flex"],
        PoolId::CourseSubjects => &[
            "Algorithms", "Databases", "Operating Systems", "Linear Algebra", "Calculus",
            "Statistics", "Microeconomics", "Macroeconomics", "Organic Chemistry",
            "Physics I", "Physics II", "World History", "Philosophy of Mind",
            "Creative Writing", "Machine Learning", "Compilers", "Networks",
            "Discrete Mathematics", "Genetics", "Cell Biology", "Thermodynamics",
            "Art History", "Social Psychology", "Public Speaking", "Number Theory",
        ],
        PoolId::Departments => &[
            "Computer Science", "Mathematics", "Physics", "Chemistry", "Biology",
            "Economics", "History", "Philosophy", "English", "Psychology", "Sociology",
            "Statistics", "Linguistics", "Music", "Art", "Engineering", "Geology",
            "Astronomy", "Political Science", "Anthropology",
        ],
        PoolId::Buildings => &[
            "Science Hall", "Humanities Bldg", "Engineering Center", "Library Annex",
            "North Hall", "South Hall", "East Wing", "West Wing", "Turing Hall",
            "Curie Center", "Newton Bldg", "Darwin Hall",
        ],
        PoolId::Semesters => &[
            "Fall 2006", "Spring 2007", "Fall 2007", "Spring 2008", "Summer 2007",
        ],
        PoolId::Journals => &[
            "Journal of Molecular Biology", "Nature", "Science", "Cell",
            "Journal of the ACM", "Communications of the ACM", "VLDB Journal",
            "Bioinformatics", "Nucleic Acids Research", "Journal of Chemical Physics",
            "Physical Review Letters", "The Lancet", "BMJ", "PNAS",
            "Journal of Organic Chemistry", "Genome Research", "Neuron", "Blood",
            "Circulation", "Journal of Immunology", "Plant Cell", "Development",
            "Journal of Neuroscience", "Analytical Chemistry", "Biochemistry",
        ],
        PoolId::Publishers => &[
            "Elsevier", "Springer", "Wiley", "ACM Press", "IEEE Press", "Oxford UP",
            "Cambridge UP", "Nature Publishing", "AAAS", "Taylor & Francis",
            "SAGE", "De Gruyter", "MIT Press", "Princeton UP", "Chicago UP",
        ],
        PoolId::Organisms => &[
            "E. coli", "S. cerevisiae", "D. melanogaster", "C. elegans", "M. musculus",
            "H. sapiens", "A. thaliana", "D. rerio", "X. laevis", "R. norvegicus",
            "B. subtilis", "P. aeruginosa", "S. pombe", "T. thermophila", "N. crassa",
        ],
        PoolId::JobTitles => &[
            "Engineer", "Manager", "Analyst", "Designer", "Consultant", "Accountant",
            "Teacher", "Nurse", "Architect", "Editor", "Scientist", "Technician",
            "Director", "Librarian", "Pharmacist", "Electrician", "Chef", "Translator",
            "Surveyor", "Paralegal",
        ],
        PoolId::Languages => &[
            "English", "French", "Spanish", "German", "Italian", "Japanese", "Korean",
            "Mandarin", "Portuguese", "Russian", "Hindi", "Arabic",
        ],
        PoolId::Countries => &[
            "USA", "Canada", "UK", "France", "Germany", "Italy", "Spain", "Japan",
            "South Korea", "China", "Brazil", "India", "Australia", "Mexico", "Sweden",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pools_are_nonempty_and_distinct_within() {
        let ids = [
            PoolId::FirstNames,
            PoolId::LastNames,
            PoolId::Streets,
            PoolId::Cities,
            PoolId::Companies,
            PoolId::MovieWords,
            PoolId::Genres,
            PoolId::Studios,
            PoolId::CarMakes,
            PoolId::CarModels,
            PoolId::Colors,
            PoolId::Transmissions,
            PoolId::Fuels,
            PoolId::CourseSubjects,
            PoolId::Departments,
            PoolId::Buildings,
            PoolId::Semesters,
            PoolId::Journals,
            PoolId::Publishers,
            PoolId::Organisms,
            PoolId::JobTitles,
            PoolId::Languages,
            PoolId::Countries,
        ];
        for id in ids {
            let words = pool(id);
            assert!(!words.is_empty(), "{id:?}");
            let set: std::collections::HashSet<_> = words.iter().collect();
            assert_eq!(set.len(), words.len(), "duplicates in {id:?}");
        }
    }
}

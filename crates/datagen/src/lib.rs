#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Synthetic web-table corpus generator for the five evaluation domains of
//! the SIGMOD'08 UDI paper (Table 1: Movie, Car, People, Course, Bib).
//!
//! The paper evaluated on HTML tables scraped from the Web — a corpus that
//! was never published. This crate substitutes a **seeded generative
//! corpus** that preserves every statistical property the UDI algorithms
//! consume:
//!
//! - attribute-name variation within a concept (synonyms, morphology,
//!   punctuation), including variants string matching *cannot* unify (the
//!   paper's `instructor`/`teacher` case) and near-threshold confusables
//!   that become uncertain edges (`issue`/`issn`, Figure 3);
//! - genuine ambiguity: one label used for two concepts in different
//!   sources (`phone` as home vs office phone, Example 2.1);
//! - attribute co-occurrence (a source with both `issue` and `issn` is
//!   evidence they differ — Algorithm 1's negative signal);
//! - frequency skew across sources (the θ filter has something to do);
//! - a shared entity universe so sources overlap in their *data*, making
//!   cross-source recall measurable;
//! - web-table grime: NULL cells and numbers stored as strings (the Course
//!   domain's precision artifact).
//!
//! Unlike the paper's authors, the generator retains exact [`GroundTruth`],
//! so golden standards for both clustering quality (Table 3) and query
//! answering (Table 2) are computed, not hand-built.
//!
//! # Quickstart
//!
//! ```
//! use udi_datagen::{generate, Domain, GenConfig};
//!
//! let corpus = generate(Domain::Bib, &GenConfig {
//!     n_sources: Some(25),
//!     ..GenConfig::default()
//! });
//! assert_eq!(corpus.catalog.source_count(), 25);
//! assert!(corpus.catalog.attribute_frequency("author") > 0.3);
//! ```

pub mod gen;
pub mod scale;
pub mod spec;
pub mod truth;
pub mod value;
pub mod vocab;

pub use gen::{generate, generate_with_concepts, GenConfig, GeneratedDomain};
pub use scale::{scale_catalog, scale_corpus, scale_source, ScaleConfig, SCALE_CONCEPTS};
pub use spec::{ConceptSpec, Domain};
pub use truth::GroundTruth;
pub use value::ValueKind;
pub use vocab::{pool, PoolId};

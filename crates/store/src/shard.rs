//! Shards: contiguous groups of source tables with their own catalog slice.
//!
//! A shard is the unit of parallelism and of incremental invalidation in
//! the massive-corpus setup path: the engine partitions per-(source,
//! schema) artifact work along shard boundaries, and `add_source` /
//! `remove_source` touch only the tail shard (respectively the shard the
//! victim lives in). Each shard maintains its own attribute → source-count
//! slice so per-shard statistics never require a pass over the whole
//! catalog.
//!
//! Shards are an in-memory layout detail: the catalog still serializes as
//! a flat source list, and source ids remain positional across shards.

use std::collections::BTreeMap;

use crate::Table;

/// A contiguous run of source tables plus its local attribute statistics.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    tables: Vec<Table>,
    /// attribute name → number of tables *in this shard* containing it.
    attr_counts: BTreeMap<String, usize>,
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Shard {
        Shard::default()
    }

    /// Number of sources in this shard.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the shard holds no sources.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The tables of this shard, in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Fetch a table by shard-local index.
    pub fn table(&self, local: usize) -> Option<&Table> {
        self.tables.get(local)
    }

    /// Total rows across the shard's tables.
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(Table::row_count).sum()
    }

    /// Number of shard-local sources whose schema contains `attribute`.
    pub fn attribute_count(&self, attribute: &str) -> usize {
        self.attr_counts.get(attribute).copied().unwrap_or(0)
    }

    /// The shard-local attribute → source-count map (sorted by name).
    pub fn attr_counts(&self) -> &BTreeMap<String, usize> {
        &self.attr_counts
    }

    /// Append a table, updating the local statistics.
    pub(crate) fn push(&mut self, table: Table) {
        for a in table.attributes() {
            *self.attr_counts.entry(a.clone()).or_insert(0) += 1;
        }
        self.tables.push(table);
    }

    /// Remove the table at `local`, updating the local statistics. Later
    /// shard-local indices shift down by one.
    pub(crate) fn remove(&mut self, local: usize) -> Table {
        let table = self.tables.remove(local);
        for a in table.attributes() {
            if let Some(c) = self.attr_counts.get_mut(a) {
                *c -= 1;
                if *c == 0 {
                    self.attr_counts.remove(a);
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_remove_maintain_counts() {
        let mut s = Shard::new();
        assert!(s.is_empty());
        s.push(Table::new("a", ["name", "phone"]));
        s.push(Table::new("b", ["name"]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.attribute_count("name"), 2);
        assert_eq!(s.attribute_count("phone"), 1);
        assert_eq!(s.attribute_count("zzz"), 0);

        let t = s.remove(0);
        assert_eq!(t.name(), "a");
        assert_eq!(s.attribute_count("name"), 1);
        assert_eq!(s.attribute_count("phone"), 0);
        assert!(!s.attr_counts().contains_key("phone"), "zero counts drop");
        assert_eq!(s.table(0).unwrap().name(), "b");
    }

    #[test]
    fn row_count_sums_tables() {
        let mut s = Shard::new();
        let mut t = Table::new("a", ["x"]);
        t.push_raw_row(["1"]).unwrap();
        t.push_raw_row(["2"]).unwrap();
        s.push(t);
        s.push(Table::new("b", ["x"]));
        assert_eq!(s.row_count(), 2);
    }
}

//! Inverted keyword index over sources.
//!
//! Backs the document-centric baselines of §7.3: the sources are treated as
//! a collection of text documents (one per row) and queried by keyword. Cell
//! tokens and attribute-name tokens are indexed separately so that
//! `KeywordStruct`/`KeywordStrict` can classify a query keyword as a
//! *structure term* (appears in some attribute name) or a *value term*.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::{Catalog, SourceId};

/// A `(source, row)` coordinate in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowRef {
    /// The source containing the row.
    pub source: SourceId,
    /// Row index within the source.
    pub row: usize,
}

/// Inverted index: token → rows whose cells contain the token, plus the set
/// of tokens appearing in attribute names.
#[derive(Debug, Clone, Default)]
pub struct KeywordIndex {
    postings: HashMap<String, BTreeSet<RowRef>>,
    attribute_tokens: HashSet<String>,
}

/// Lowercase alphanumeric tokenization shared by indexing and querying.
pub(crate) fn tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl KeywordIndex {
    /// Index every cell of every source in the catalog.
    pub fn build(catalog: &Catalog) -> KeywordIndex {
        let mut idx = KeywordIndex::default();
        for (sid, table) in catalog.iter_sources() {
            for a in table.attributes() {
                for t in tokens(a) {
                    idx.attribute_tokens.insert(t);
                }
            }
            // Column-major walk: one contiguous segment per attribute.
            // Postings are sets keyed by (source, row), so the resulting
            // index is identical to a row-major build.
            for ci in 0..table.arity() {
                let Some(col) = table.column(ci) else {
                    continue;
                };
                for (ri, cell) in col.iter().enumerate() {
                    let rref = RowRef {
                        source: sid,
                        row: ri,
                    };
                    for t in tokens(&cell.to_string()) {
                        idx.postings.entry(t).or_default().insert(rref);
                    }
                }
            }
        }
        idx
    }

    /// Rows whose cells contain the given keyword (case-insensitive).
    pub fn rows_with(&self, keyword: &str) -> impl Iterator<Item = RowRef> + '_ {
        let key = keyword.to_lowercase();
        self.postings.get(&key).into_iter().flatten().copied()
    }

    /// Rows containing *any* of the keywords (disjunctive retrieval).
    pub fn rows_with_any<'a, I>(&self, keywords: I) -> BTreeSet<RowRef>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut out = BTreeSet::new();
        for k in keywords {
            out.extend(self.rows_with(k));
        }
        out
    }

    /// Rows containing *all* of the keywords (conjunctive retrieval).
    /// An empty keyword list yields the empty set.
    pub fn rows_with_all<'a, I>(&self, keywords: I) -> BTreeSet<RowRef>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut iter = keywords.into_iter();
        let Some(first) = iter.next() else {
            return BTreeSet::new();
        };
        let mut acc: BTreeSet<RowRef> = self.rows_with(first).collect();
        for k in iter {
            if acc.is_empty() {
                break;
            }
            let next: BTreeSet<RowRef> = self.rows_with(k).collect();
            acc = acc.intersection(&next).copied().collect();
        }
        acc
    }

    /// Does the keyword occur in any attribute name? (`KeywordStruct`'s
    /// structure-term test.)
    pub fn is_structure_term(&self, keyword: &str) -> bool {
        self.attribute_tokens.contains(&keyword.to_lowercase())
    }

    /// Number of distinct indexed cell tokens.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t0 = Table::new("s0", ["name", "phone"]);
        t0.push_raw_row(["Alice Smith", "123-4567"]).unwrap();
        t0.push_raw_row(["Bob Jones", "765-4321"]).unwrap();
        c.add_source(t0).unwrap();
        let mut t1 = Table::new("s1", ["title", "year"]);
        t1.push_raw_row(["Alice in Wonderland", "1951"]).unwrap();
        c.add_source(t1).unwrap();
        c
    }

    #[test]
    fn tokenization() {
        assert_eq!(tokens("Alice Smith"), vec!["alice", "smith"]);
        assert_eq!(tokens("123-4567"), vec!["123", "4567"]);
        assert!(tokens("--").is_empty());
    }

    #[test]
    fn single_keyword_retrieval_is_case_insensitive() {
        let idx = KeywordIndex::build(&catalog());
        let rows: Vec<RowRef> = idx.rows_with("ALICE").collect();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&RowRef {
            source: SourceId(0),
            row: 0
        }));
        assert!(rows.contains(&RowRef {
            source: SourceId(1),
            row: 0
        }));
    }

    #[test]
    fn any_vs_all_semantics() {
        let idx = KeywordIndex::build(&catalog());
        let any = idx.rows_with_any(["alice", "jones"]);
        assert_eq!(any.len(), 3);
        let all = idx.rows_with_all(["alice", "wonderland"]);
        assert_eq!(all.len(), 1);
        assert_eq!(all.iter().next().unwrap().source, SourceId(1));
        assert!(idx.rows_with_all(["alice", "jones"]).is_empty());
    }

    #[test]
    fn empty_keyword_lists() {
        let idx = KeywordIndex::build(&catalog());
        assert!(idx.rows_with_any(std::iter::empty()).is_empty());
        assert!(idx.rows_with_all(std::iter::empty()).is_empty());
    }

    #[test]
    fn structure_terms_come_from_attribute_names() {
        let idx = KeywordIndex::build(&catalog());
        assert!(idx.is_structure_term("name"));
        assert!(idx.is_structure_term("YEAR"));
        assert!(!idx.is_structure_term("alice"));
    }

    #[test]
    fn unknown_keyword_yields_nothing() {
        let idx = KeywordIndex::build(&catalog());
        assert_eq!(idx.rows_with("zebra").count(), 0);
    }
}

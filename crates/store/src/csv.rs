//! Minimal CSV import/export for source tables.
//!
//! Real deployments of a pay-as-you-go system start from files someone
//! exported somewhere. This is a dependency-free RFC 4180 subset: comma
//! separator, `"` quoting with `""` escapes, LF or CRLF line endings. The
//! first record is the header (the source schema); every cell is parsed
//! with [`Value::parse`] (empty → NULL, numeric-looking → numbers).

use crate::{StoreError, Table, Value};

/// Errors specific to CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header record.
    MissingHeader,
    /// A record had a different number of fields than the header.
    RaggedRow {
        /// 1-based record number (header = 1).
        record: usize,
        /// Number of header columns.
        expected: usize,
        /// Number of fields found.
        got: usize,
    },
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// Byte offset where the field started.
        offset: usize,
    },
    /// The header was structurally invalid (e.g. duplicate column names).
    BadHeader(StoreError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header record"),
            CsvError::RaggedRow {
                record,
                expected,
                got,
            } => {
                write!(f, "record {record} has {got} fields, header has {expected}")
            }
            CsvError::UnterminatedQuote { offset } => {
                write!(f, "unterminated quoted field starting at byte {offset}")
            }
            CsvError::BadHeader(e) => write!(f, "invalid header: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Split CSV text into records of fields.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let bytes = text.as_bytes();
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut i = 0;
    let mut field_started = false;
    while i < bytes.len() {
        let Some(&c) = bytes.get(i) else { break };
        match c {
            b'"' if !field_started || field.is_empty() => {
                // Quoted field.
                let start = i;
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(CsvError::UnterminatedQuote { offset: start }),
                        Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                            field.push('"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Advance one UTF-8 character.
                            let tail = text.get(i..).unwrap_or("");
                            let ch_len = tail.chars().next().map_or(1, char::len_utf8);
                            field.push_str(tail.get(..ch_len).unwrap_or(""));
                            i += ch_len;
                        }
                    }
                }
                field_started = true;
            }
            b',' => {
                record.push(std::mem::take(&mut field));
                field_started = false;
                i += 1;
            }
            b'\r' if bytes.get(i + 1) == Some(&b'\n') => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                field_started = false;
                i += 2;
            }
            b'\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                field_started = false;
                i += 1;
            }
            _ => {
                let tail = text.get(i..).unwrap_or("");
                let ch_len = tail.chars().next().map_or(1, char::len_utf8);
                field.push_str(tail.get(..ch_len).unwrap_or(""));
                field_started = true;
                i += ch_len;
            }
        }
    }
    if field_started || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

impl Table {
    /// Parse a CSV document into a table named `name`. The first record is
    /// the header.
    pub fn from_csv(name: impl Into<String>, text: &str) -> Result<Table, CsvError> {
        let records = parse_records(text)?;
        let mut iter = records.into_iter();
        let header = iter
            .next()
            .filter(|h| !h.is_empty() && h != &vec![String::new()]);
        let Some(header) = header else {
            return Err(CsvError::MissingHeader);
        };
        let mut table =
            Table::try_new(name, header.iter().map(String::as_str)).map_err(CsvError::BadHeader)?;
        for (idx, rec) in iter.enumerate() {
            // A trailing blank line parses as a single empty field: skip it.
            if rec.len() == 1 && rec.first().is_some_and(String::is_empty) && table.arity() != 1 {
                continue;
            }
            if rec.len() != table.arity() {
                return Err(CsvError::RaggedRow {
                    record: idx + 2,
                    expected: table.arity(),
                    got: rec.len(),
                });
            }
            table
                .push_row(rec.iter().map(|c| Value::parse(c)).collect())
                .map_err(|_| CsvError::RaggedRow {
                    record: idx + 2,
                    expected: table.arity(),
                    got: rec.len(),
                })?;
        }
        Ok(table)
    }

    /// Render the table back to CSV (header + rows). Fields containing
    /// commas, quotes or newlines are quoted; NULL renders empty.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let header: Vec<String> = self.attributes().iter().map(|a| escape(a)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for ri in 0..self.row_count() {
            let cells: Vec<String> = (0..self.arity())
                .map(|ci| {
                    self.value_at(ri, ci)
                        .map(|v| escape(&v.to_string()))
                        .unwrap_or_default()
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let csv = "name,year\nCasablanca,1942\nVertigo,1958\n";
        let t = Table::from_csv("movies", csv).unwrap();
        assert_eq!(t.attributes(), &["name", "year"]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, "year"), Some(&Value::Int(1942)));
        assert_eq!(t.to_csv(), csv);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let csv =
            "title,director\n\"Crouching Tiger, Hidden Dragon\",Ang Lee\n\"The \"\"Best\"\"\",X\n";
        let t = Table::from_csv("m", csv).unwrap();
        assert_eq!(
            t.cell(0, "title"),
            Some(&Value::text("Crouching Tiger, Hidden Dragon"))
        );
        assert_eq!(t.cell(1, "title"), Some(&Value::text("The \"Best\"")));
        // Round trip preserves content.
        let again = Table::from_csv("m", &t.to_csv()).unwrap();
        assert_eq!(again.to_rows(), t.to_rows());
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let csv = "a,b\r\n1,2\r\n3,4";
        let t = Table::from_csv("t", csv).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(1, "b"), Some(&Value::Int(4)));
    }

    #[test]
    fn empty_cells_become_null() {
        let csv = "a,b\n,2\n";
        let t = Table::from_csv("t", csv).unwrap();
        assert_eq!(t.cell(0, "a"), Some(&Value::Null));
    }

    #[test]
    fn errors() {
        assert_eq!(
            Table::from_csv("t", "").unwrap_err(),
            CsvError::MissingHeader
        );
        let e = Table::from_csv("t", "a,b\n1\n").unwrap_err();
        assert!(matches!(
            e,
            CsvError::RaggedRow {
                record: 2,
                expected: 2,
                got: 1
            }
        ));
        let e = Table::from_csv("t", "a,b\n\"oops,1\n").unwrap_err();
        assert!(matches!(e, CsvError::UnterminatedQuote { .. }));
        let e = Table::from_csv("t", "a,a\n1,2\n").unwrap_err();
        assert!(matches!(e, CsvError::BadHeader(_)));
        assert!(e.to_string().contains("invalid header"));
    }

    #[test]
    fn trailing_blank_line_is_ignored() {
        let csv = "a,b\n1,2\n\n";
        let t = Table::from_csv("t", csv).unwrap();
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn unicode_fields() {
        let csv = "名前,ville\nAmélie,Paris\n";
        let t = Table::from_csv("t", csv).unwrap();
        assert_eq!(t.attributes(), &["名前", "ville"]);
        assert_eq!(t.cell(0, "名前"), Some(&Value::text("Amélie")));
    }
}

//! Single-table data sources.

use serde::{Deserialize, Serialize};

use crate::{StoreError, Value};

/// A row is a vector of cells aligned with the table schema.
pub type Row = Vec<Value>;

/// A named single-table data source: an ordered list of attribute names and
/// the rows beneath them.
///
/// The paper considers "the case where each schema contains a single table
/// with a set of attributes", so a source *is* a table. Attribute names are
/// kept verbatim (heterogeneity is the whole point); matching and
/// normalization happen upstream in `udi-similarity`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    attributes: Vec<String>,
    rows: Vec<Row>,
}

impl Table {
    /// Create an empty table. Panics if the attribute list contains
    /// duplicates — use [`Table::try_new`] for fallible construction.
    pub fn new<I, S>(name: impl Into<String>, attributes: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        // udi-audit: allow(no-panic-in-lib, "documented panic: the infallible constructor variant; try_new is the fallible one")
        Table::try_new(name, attributes).expect("duplicate attribute name")
    }

    /// Create an empty table, rejecting duplicate attribute names.
    pub fn try_new<I, S>(name: impl Into<String>, attributes: I) -> Result<Table, StoreError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let name = name.into();
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].contains(a) {
                return Err(StoreError::DuplicateAttribute {
                    table: name,
                    attribute: a.clone(),
                });
            }
        }
        Ok(Table {
            name,
            attributes,
            rows: Vec::new(),
        })
    }

    /// The source/table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute names in schema order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Position of an attribute in the schema, if present (exact match).
    pub fn attribute_index(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }

    /// Whether the schema contains `attribute` (exact match).
    pub fn has_attribute(&self, attribute: &str) -> bool {
        self.attribute_index(attribute).is_some()
    }

    /// Append a row, validating arity.
    pub fn push_row(&mut self, row: Row) -> Result<(), StoreError> {
        if row.len() != self.attributes.len() {
            return Err(StoreError::ArityMismatch {
                table: self.name.clone(),
                expected: self.attributes.len(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Append a row of string literals, parsing each cell with
    /// [`Value::parse`].
    pub fn push_raw_row<I, S>(&mut self, cells: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let row: Row = cells
            .into_iter()
            .map(|c| Value::parse(c.as_ref()))
            .collect();
        self.push_row(row)
    }

    /// The cell at (`row`, `attribute`), if both exist.
    pub fn cell(&self, row: usize, attribute: &str) -> Option<&Value> {
        let col = self.attribute_index(attribute)?;
        self.rows.get(row).map(|r| &r[col])
    }

    /// Iterate over `(row_index, row)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.rows.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("people", ["name", "phone", "age"]);
        t.push_raw_row(["Alice", "123-4567", "34"]).unwrap();
        t.push_raw_row(["Bob", "", "41"]).unwrap();
        t
    }

    #[test]
    fn construction_and_lookup() {
        let t = sample();
        assert_eq!(t.name(), "people");
        assert_eq!(t.arity(), 3);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.attribute_index("phone"), Some(1));
        assert_eq!(t.attribute_index("Phone"), None, "lookup is exact");
        assert!(t.has_attribute("age"));
        assert!(!t.has_attribute("salary"));
    }

    #[test]
    fn raw_rows_are_parsed() {
        let t = sample();
        assert_eq!(t.cell(0, "age"), Some(&Value::Int(34)));
        assert_eq!(t.cell(1, "phone"), Some(&Value::Null));
        assert_eq!(t.cell(0, "name"), Some(&Value::text("Alice")));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        let err = t.push_row(vec![Value::text("x")]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::ArityMismatch {
                got: 1,
                expected: 3,
                ..
            }
        ));
        assert_eq!(t.row_count(), 2, "failed push must not mutate");
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Table::try_new("t", ["a", "b", "a"]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateAttribute { .. }));
    }

    #[test]
    fn cell_out_of_range_is_none() {
        let t = sample();
        assert_eq!(t.cell(9, "name"), None);
        assert_eq!(t.cell(0, "nope"), None);
    }

    #[test]
    fn iter_rows_yields_indices() {
        let t = sample();
        let idx: Vec<usize> = t.iter_rows().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1]);
    }
}

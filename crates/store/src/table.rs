//! Single-table data sources, stored column-major.
//!
//! Rows arrive row-major (CSV import, generators) but the hot paths —
//! predicate scans, LIKE filters, keyword tokenization — each touch only a
//! few attributes of every tuple. Storing each attribute as its own
//! [`Value`] segment lets those paths walk one contiguous column instead of
//! striding across heterogeneous rows, and lets a 100k-source corpus drop
//! the per-row `Vec` header overhead (one allocation per column instead of
//! one per tuple).
//!
//! The serialized form is unchanged: a table still serializes as
//! `{name, attributes, rows}` (row-major), so fixtures and any persisted
//! catalogs keep working.

use serde::{Deserialize, Serialize};

use crate::{StoreError, Value};

/// A row is a vector of cells aligned with the table schema.
pub type Row = Vec<Value>;

/// A named single-table data source: an ordered list of attribute names and
/// one column segment per attribute.
///
/// The paper considers "the case where each schema contains a single table
/// with a set of attributes", so a source *is* a table. Attribute names are
/// kept verbatim (heterogeneity is the whole point); matching and
/// normalization happen upstream in `udi-similarity`.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "TableRepr", into = "TableRepr")]
pub struct Table {
    name: String,
    attributes: Vec<String>,
    /// One segment per attribute; all segments have length `len`.
    cols: Vec<Vec<Value>>,
    /// Row count, tracked explicitly so zero-arity tables still count rows.
    len: usize,
}

/// Row-major wire format (the pre-columnar layout, kept for compatibility).
#[derive(Serialize, Deserialize)]
#[serde(rename = "Table")]
struct TableRepr {
    name: String,
    attributes: Vec<String>,
    rows: Vec<Row>,
}

impl From<TableRepr> for Table {
    fn from(repr: TableRepr) -> Table {
        let arity = repr.attributes.len();
        let mut t = Table {
            name: repr.name,
            attributes: repr.attributes,
            cols: vec![Vec::new(); arity],
            len: 0,
        };
        for mut row in repr.rows {
            // Tolerate ragged persisted rows: pad with NULL, drop extras.
            // resize() pins the row to the table arity, so push_row cannot
            // reject it; `.ok()` marks the impossible branch as discarded.
            row.resize(arity, Value::Null);
            t.push_row(row).ok();
        }
        t
    }
}

impl From<Table> for TableRepr {
    fn from(t: Table) -> TableRepr {
        let rows = t.to_rows();
        TableRepr {
            name: t.name,
            attributes: t.attributes,
            rows,
        }
    }
}

impl Table {
    /// Create an empty table. Panics if the attribute list contains
    /// duplicates — use [`Table::try_new`] for fallible construction.
    pub fn new<I, S>(name: impl Into<String>, attributes: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        // udi-audit: allow(no-panic-in-lib, "documented panic: the infallible constructor variant; try_new is the fallible one")
        Table::try_new(name, attributes).expect("duplicate attribute name")
    }

    /// Create an empty table, rejecting duplicate attribute names.
    pub fn try_new<I, S>(name: impl Into<String>, attributes: I) -> Result<Table, StoreError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let name = name.into();
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        for (i, a) in attributes.iter().enumerate() {
            if attributes.get(..i).is_some_and(|head| head.contains(a)) {
                return Err(StoreError::DuplicateAttribute {
                    table: name,
                    attribute: a.clone(),
                });
            }
        }
        let cols = vec![Vec::new(); attributes.len()];
        Ok(Table {
            name,
            attributes,
            cols,
            len: 0,
        })
    }

    /// The source/table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute names in schema order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.len
    }

    /// The column segment at schema position `col`, if in range. This is
    /// the scan-friendly access path: one contiguous slice per attribute.
    pub fn column(&self, col: usize) -> Option<&[Value]> {
        self.cols.get(col).map(Vec::as_slice)
    }

    /// The column segment under `attribute` (exact name match).
    pub fn column_by_name(&self, attribute: &str) -> Option<&[Value]> {
        self.column(self.attribute_index(attribute)?)
    }

    /// The cell at (`row`, `col`) by position, if both are in range.
    pub fn value_at(&self, row: usize, col: usize) -> Option<&Value> {
        self.cols.get(col)?.get(row)
    }

    /// Materialize row `row` (cells cloned in schema order), if in range.
    pub fn row(&self, row: usize) -> Option<Row> {
        if row >= self.len {
            return None;
        }
        Some(
            self.cols
                .iter()
                .map(|c| c.get(row).cloned().unwrap_or(Value::Null))
                .collect(),
        )
    }

    /// Materialize every row (row-major copy of the table).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len)
            .map(|r| self.row(r).unwrap_or_default())
            .collect()
    }

    /// Position of an attribute in the schema, if present (exact match).
    pub fn attribute_index(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }

    /// Whether the schema contains `attribute` (exact match).
    pub fn has_attribute(&self, attribute: &str) -> bool {
        self.attribute_index(attribute).is_some()
    }

    /// Append a row, validating arity.
    pub fn push_row(&mut self, row: Row) -> Result<(), StoreError> {
        if row.len() != self.attributes.len() {
            return Err(StoreError::ArityMismatch {
                table: self.name.clone(),
                expected: self.attributes.len(),
                got: row.len(),
            });
        }
        for (col, cell) in self.cols.iter_mut().zip(row) {
            col.push(cell);
        }
        self.len += 1;
        Ok(())
    }

    /// Append a row of string literals, parsing each cell with
    /// [`Value::parse`].
    pub fn push_raw_row<I, S>(&mut self, cells: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let row: Row = cells
            .into_iter()
            .map(|c| Value::parse(c.as_ref()))
            .collect();
        self.push_row(row)
    }

    /// The cell at (`row`, `attribute`), if both exist.
    pub fn cell(&self, row: usize, attribute: &str) -> Option<&Value> {
        let col = self.attribute_index(attribute)?;
        self.value_at(row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("people", ["name", "phone", "age"]);
        t.push_raw_row(["Alice", "123-4567", "34"]).unwrap();
        t.push_raw_row(["Bob", "", "41"]).unwrap();
        t
    }

    #[test]
    fn construction_and_lookup() {
        let t = sample();
        assert_eq!(t.name(), "people");
        assert_eq!(t.arity(), 3);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.attribute_index("phone"), Some(1));
        assert_eq!(t.attribute_index("Phone"), None, "lookup is exact");
        assert!(t.has_attribute("age"));
        assert!(!t.has_attribute("salary"));
    }

    #[test]
    fn raw_rows_are_parsed() {
        let t = sample();
        assert_eq!(t.cell(0, "age"), Some(&Value::Int(34)));
        assert_eq!(t.cell(1, "phone"), Some(&Value::Null));
        assert_eq!(t.cell(0, "name"), Some(&Value::text("Alice")));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        let err = t.push_row(vec![Value::text("x")]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::ArityMismatch {
                got: 1,
                expected: 3,
                ..
            }
        ));
        assert_eq!(t.row_count(), 2, "failed push must not mutate");
        assert!(t.cols.iter().all(|c| c.len() == 2), "columns stay aligned");
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Table::try_new("t", ["a", "b", "a"]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateAttribute { .. }));
    }

    #[test]
    fn cell_out_of_range_is_none() {
        let t = sample();
        assert_eq!(t.cell(9, "name"), None);
        assert_eq!(t.cell(0, "nope"), None);
        assert_eq!(t.value_at(0, 9), None);
        assert_eq!(t.row(2), None);
    }

    #[test]
    fn columns_are_contiguous_segments() {
        let t = sample();
        let ages = t.column(2).unwrap();
        assert_eq!(ages, &[Value::Int(34), Value::Int(41)]);
        assert_eq!(t.column_by_name("age").unwrap(), ages);
        assert_eq!(t.column(3), None);
        assert_eq!(t.column_by_name("salary"), None);
    }

    #[test]
    fn rows_materialize_in_schema_order() {
        let t = sample();
        assert_eq!(
            t.row(1).unwrap(),
            vec![Value::text("Bob"), Value::Null, Value::Int(41)]
        );
        let rows = t.to_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::text("Alice"));
    }

    #[test]
    fn zero_arity_tables_count_rows() {
        let mut t = Table::new("unit", Vec::<String>::new());
        t.push_row(vec![]).unwrap();
        t.push_row(vec![]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(0), Some(vec![]));
        assert_eq!(t.to_rows(), vec![Vec::<Value>::new(); 2]);
    }

    #[test]
    fn repr_round_trip_is_row_major() {
        let t = sample();
        let repr = TableRepr::from(t.clone());
        assert_eq!(repr.rows.len(), 2);
        assert_eq!(repr.rows[1][2], Value::Int(41));
        let back = Table::from(repr);
        assert_eq!(back.to_rows(), t.to_rows());
        assert_eq!(back.name(), "people");
    }

    #[test]
    fn ragged_repr_rows_are_padded_and_truncated() {
        let repr = TableRepr {
            name: "r".into(),
            attributes: vec!["a".into(), "b".into()],
            rows: vec![
                vec![Value::Int(1)],
                vec![Value::Int(2), Value::Int(3), Value::Int(4)],
            ],
        };
        let t = Table::from(repr);
        assert_eq!(t.row(0), Some(vec![Value::Int(1), Value::Null]));
        assert_eq!(t.row(1), Some(vec![Value::Int(2), Value::Int(3)]));
    }
}

//! Typed cell values with SQL-flavored comparison semantics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A single cell value.
///
/// Numeric kinds compare to each other numerically; text compares to text
/// lexicographically (case-sensitive). A comparison between text and a
/// numeric value renders the number as text and compares lexicographically —
/// the behaviour of a source that stored numbers as strings, which is exactly
/// the artifact the paper reports for the Course domain ("a numeric
/// comparison performed on a string data type generates incorrect answers").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL. Compares below everything; equal only to itself for
    /// deduplication purposes (predicate evaluation treats it as no-match).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float. NaN is normalized to [`Value::Null`] at construction
    /// via [`Value::float`]; do not construct `Float(NaN)` directly.
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Build a text value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Build an integer value.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Build a float value; NaN becomes [`Value::Null`] so that `Eq`/`Ord`
    /// stay total.
    pub fn float(v: f64) -> Value {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }

    /// Is this the SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Parse a literal the way a web-table importer would: empty → NULL,
    /// integer-looking → `Int`, float-looking → `Float`, otherwise `Text`.
    ///
    /// ```
    /// use udi_store::Value;
    /// assert_eq!(Value::parse("42"), Value::Int(42));
    /// assert_eq!(Value::parse("4.5"), Value::Float(4.5));
    /// assert_eq!(Value::parse("abc"), Value::text("abc"));
    /// assert_eq!(Value::parse(""), Value::Null);
    /// ```
    pub fn parse(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            return Value::float(f);
        }
        Value::Text(trimmed.to_owned())
    }

    /// Render the value the way it would appear in a result row.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// SQL-style comparison used by predicate evaluation.
    ///
    /// Returns `None` when either side is NULL (three-valued logic: the
    /// predicate is unknown, hence not satisfied). A comparison between
    /// text and a numeric value renders the number and compares
    /// lexicographically — the stringly-typed-source artifact (see
    /// type-level docs). That mixed rule is deliberately *not* part of
    /// [`Ord`]: it is intransitive (`Int(2) > Text("10")`,
    /// `Text("10") ~ Int(10)`, `Int(10) > Int(2)`), which would corrupt
    /// ordered containers; `Ord` ranks kinds strictly instead.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Text(x), Text(y)) => Some(x.cmp(y)),
            (Text(x), y) => Some(x.cmp(&y.to_string())),
            (x, Text(y)) => Some(x.to_string().cmp(y)),
            (a, b) => Some(total_cmp(a, b)),
        }
    }
}

/// Transitive total order for `Ord`/`Eq`/`Hash`: NULL < numerics < text;
/// numerics compare numerically across `Int`/`Float`, text
/// lexicographically. (Predicate evaluation uses [`Value::sql_cmp`], which
/// additionally coerces mixed text/number pairs.)
fn total_cmp(a: &Value, b: &Value) -> Ordering {
    use Value::*;
    fn rank(v: &Value) -> u8 {
        match v {
            Null => 0,
            Int(_) | Float(_) => 1,
            Text(_) => 2,
        }
    }
    match (a, b) {
        (Int(x), Int(y)) => x.cmp(y),
        (Int(x), Float(y)) => cmp_f64(*x as f64, *y),
        (Float(x), Int(y)) => cmp_f64(*x, *y as f64),
        (Float(x), Float(y)) => cmp_f64(*x, *y),
        (Text(x), Text(y)) => x.cmp(y),
        (Null, Null) => Ordering::Equal,
        (x, y) => rank(x).cmp(&rank(y)),
    }
}

fn cmp_f64(x: f64, y: f64) -> Ordering {
    // NaN is rejected at `Value` construction, so `partial_cmp` cannot
    // return `None`; `Equal` is a defensive fallback, not a reachable case.
    x.partial_cmp(&y).unwrap_or(Ordering::Equal)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        total_cmp(self, other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        total_cmp(self, other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash must agree with `eq`: Int(2) == Float(2.0), so both hash as
        // the f64 bit pattern; NULL and text hash under their own tags
        // (text never equals a number under the strict total order).
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(i) => {
                state.write_u8(1);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(1);
                state.write_u64(f.to_bits());
            }
            Value::Text(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::float(v)
    }
}

/// SQL `LIKE` pattern matching: `%` matches any run (including empty),
/// `_` matches exactly one character. Matching is case-insensitive, as in
/// MySQL's default collation.
///
/// ```
/// use udi_store::like_match;
/// assert!(like_match("Alice", "a%"));
/// assert!(like_match("Alice", "%LIC%"));
/// assert!(like_match("cat", "c_t"));
/// assert!(!like_match("cart", "c_t"));
/// ```
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.to_lowercase().chars().collect();
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    like_greedy(&t, &p)
}

/// Iterative greedy two-pointer wildcard matcher. Each `%` initially
/// absorbs nothing; on a later mismatch the scan backtracks to just past
/// the *most recent* `%` and lets it absorb one more character. Dropping
/// earlier-`%` alternatives is safe: a later `%` can absorb anything an
/// earlier one could. Worst case O(|t|·|p|) with no recursion — the
/// previous recursive matcher branched at every `%` and went exponential
/// on patterns like `%a%a%a%` against long non-matching text (also risking
/// stack overflow on long inputs).
fn like_greedy(t: &[char], p: &[char]) -> bool {
    let (mut ti, mut pi) = (0usize, 0usize);
    // After the most recent `%`: (pattern index past it, text index where
    // its current absorption ends).
    let mut retry: Option<(usize, usize)> = None;
    while let Some(&tc) = t.get(ti) {
        match p.get(pi) {
            Some(&pc) if pc == '_' || pc == tc => {
                ti += 1;
                pi += 1;
            }
            Some('%') => {
                retry = Some((pi + 1, ti));
                pi += 1;
            }
            _ => {
                let Some((rp, rt)) = retry else {
                    return false;
                };
                pi = rp;
                ti = rt + 1;
                retry = Some((rp, rt + 1));
            }
        }
    }
    // Only trailing `%`s can match the exhausted text.
    while p.get(pi) == Some(&'%') {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
    }

    #[test]
    fn text_and_numbers_are_distinct_under_the_total_order() {
        // `Ord`/`Eq` are strictly typed (numbers < text); the lexicographic
        // coercion lives only in `sql_cmp`, where the predicate artifact
        // belongs.
        assert_ne!(Value::text("42"), Value::Int(42));
        assert!(Value::Int(42) < Value::text("42"));
        assert_eq!(
            Value::text("42").sql_cmp(&Value::Int(42)),
            Some(Ordering::Equal),
            "predicates still coerce"
        );
    }

    #[test]
    fn null_semantics() {
        assert!(Value::Null.sql_cmp(&Value::Int(1)).is_none());
        assert!(Value::Int(1).sql_cmp(&Value::Null).is_none());
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null < Value::Int(i64::MIN));
    }

    #[test]
    fn stringly_typed_comparison_artifact() {
        // The Course-domain artifact: "9" > "30" lexicographically.
        let nine = Value::text("9");
        let thirty = Value::Int(30);
        assert_eq!(nine.sql_cmp(&thirty), Some(Ordering::Greater));
    }

    #[test]
    fn nan_is_normalized() {
        assert!(Value::float(f64::NAN).is_null());
        assert_eq!(Value::from(f64::NAN), Value::Null);
    }

    #[test]
    fn parse_covers_all_shapes() {
        assert_eq!(Value::parse(" 7 "), Value::Int(7));
        assert_eq!(Value::parse("-3.25"), Value::Float(-3.25));
        assert_eq!(Value::parse("7a"), Value::text("7a"));
        assert_eq!(Value::parse("   "), Value::Null);
    }

    #[test]
    fn display_round_trips_ints() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::text("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn like_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("anything", "%%"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "ab"));
        assert!(like_match("database systems", "%base%sys%"));
    }

    /// The pre-fix recursive matcher, kept as a test oracle: correct on
    /// small inputs, exponential on `%`-heavy non-matching ones.
    fn like_rec_reference(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => (0..=t.len()).any(|k| like_rec_reference(&t[k..], &p[1..])),
            Some('_') => !t.is_empty() && like_rec_reference(&t[1..], &p[1..]),
            Some(&c) => t.first() == Some(&c) && like_rec_reference(&t[1..], &p[1..]),
        }
    }

    #[test]
    fn like_pathological_pattern_is_fast() {
        // `%a%a%a%a%b` against 10k 'a's (no 'b' anywhere): the recursive
        // matcher branched at every `%` and effectively never returned;
        // the greedy matcher must answer (false) in milliseconds.
        let text: String = "a".repeat(10_000);
        let start = std::time::Instant::now();
        assert!(!like_match(&text, "%a%a%a%a%b"));
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "pathological LIKE took {:?}",
            start.elapsed()
        );
        // The matching variant stays correct on the same text.
        let mut with_b = text.clone();
        with_b.push('b');
        assert!(like_match(&with_b, "%a%a%a%a%b"));
    }

    #[test]
    fn like_backtracks_past_percent_correctly() {
        // Requires revisiting a `%`'s absorption: the first "ab" after the
        // `%` is a false start (only the second one is followed by `_c`).
        assert!(like_match("abdabxc", "%ab_c"));
        assert!(!like_match("abdabxd", "%ab_c"));
        // `_` after `%` must consume exactly one character.
        assert!(like_match("ab", "%_b"));
        assert!(!like_match("b", "%_b"));
    }

    #[test]
    fn ord_is_total_across_kinds() {
        let mut vs = [
            Value::text("zzz"),
            Value::Int(10),
            Value::Null,
            Value::Float(2.5),
            Value::text("aaa"),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
    }

    proptest! {
        #[test]
        fn eq_implies_same_hash(a in -1_000_000i64..1_000_000) {
            let i = Value::Int(a);
            let f = Value::Float(a as f64);
            prop_assert_eq!(&i, &f);
            prop_assert_eq!(h(&i), h(&f));
        }

        /// The `Ord` impl must be a transitive total order across every
        /// kind mix — the property the old text/number coercion violated.
        #[test]
        fn ord_is_transitive(
            raw in proptest::collection::vec(
                prop_oneof![
                    Just(Value::Null),
                    any::<i32>().prop_map(|i| Value::Int(i as i64)),
                    (-100.0f64..100.0).prop_map(Value::float),
                    "[0-9]{1,3}".prop_map(Value::text),
                ],
                3,
            )
        ) {
            let (a, b, c) = (&raw[0], &raw[1], &raw[2]);
            use std::cmp::Ordering::*;
            if a.cmp(b) != Greater && b.cmp(c) != Greater {
                prop_assert_ne!(a.cmp(c), Greater, "{:?} {:?} {:?}", a, b, c);
            }
        }

        #[test]
        fn cmp_antisymmetric(x in -1000i64..1000, y in -1000i64..1000) {
            let a = Value::Int(x);
            let b = Value::Int(y);
            prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        }

        #[test]
        fn like_literal_pattern_matches_itself(s in "[a-z]{0,10}") {
            prop_assert!(like_match(&s, &s));
        }

        /// The greedy matcher agrees with the (correct-but-exponential)
        /// recursive reference on every small text/pattern pair over an
        /// alphabet that exercises both wildcards.
        #[test]
        fn like_greedy_agrees_with_recursive_reference(
            text in "[ab]{0,8}",
            pattern in "[ab%_]{0,8}",
        ) {
            let t: Vec<char> = text.chars().collect();
            let p: Vec<char> = pattern.chars().collect();
            prop_assert_eq!(
                like_greedy(&t, &p),
                like_rec_reference(&t, &p),
                "text={:?} pattern={:?}", text, pattern
            );
        }

        #[test]
        fn like_percent_prefix_suffix(s in "[a-z]{1,10}") {
            let pre = format!("%{s}");
            let suf = format!("{s}%");
            let both = format!("%{s}%");
            prop_assert!(like_match(&s, &pre));
            prop_assert!(like_match(&s, &suf));
            prop_assert!(like_match(&s, &both));
        }
    }
}

//! The catalog of registered data sources.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{StoreError, Table};

/// Opaque identifier of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub u32);

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The set of data sources UDI integrates over, plus the attribute universe
/// statistics Algorithm 1 needs:
///
/// - `A = attr(S1) ∪ ... ∪ attr(Sn)` (distinct attribute names), and
/// - `f(a) = |{i | a ∈ Si}| / n`, the fraction of sources containing `a`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    sources: Vec<Table>,
    /// attribute name → number of sources whose schema contains it.
    attr_source_counts: BTreeMap<String, usize>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a source table, returning its id.
    pub fn add_source(&mut self, table: Table) -> SourceId {
        for a in table.attributes() {
            *self.attr_source_counts.entry(a.clone()).or_insert(0) += 1;
        }
        let id = SourceId(self.sources.len() as u32);
        self.sources.push(table);
        id
    }

    /// Remove the source named `name`, returning the dropped table.
    ///
    /// Later source ids shift down by one (ids are positional); attribute
    /// frequencies are updated in place. `Err(StoreError::UnknownSourceName)`
    /// when no source has that name.
    pub fn remove_source(&mut self, name: &str) -> Result<Table, StoreError> {
        let i = self
            .sources
            .iter()
            .position(|t| t.name() == name)
            .ok_or_else(|| StoreError::UnknownSourceName(name.to_owned()))?;
        let table = self.sources.remove(i);
        for a in table.attributes() {
            if let Some(c) = self.attr_source_counts.get_mut(a) {
                *c -= 1;
                if *c == 0 {
                    self.attr_source_counts.remove(a);
                }
            }
        }
        Ok(table)
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Total number of rows across all sources.
    pub fn total_rows(&self) -> usize {
        self.sources.iter().map(Table::row_count).sum()
    }

    /// Fetch a source by id.
    pub fn source(&self, id: SourceId) -> Result<&Table, StoreError> {
        self.sources
            .get(id.0 as usize)
            .ok_or(StoreError::UnknownSource(id.0))
    }

    /// Iterate `(id, table)` over all sources.
    pub fn iter_sources(&self) -> impl Iterator<Item = (SourceId, &Table)> {
        self.sources
            .iter()
            .enumerate()
            .map(|(i, t)| (SourceId(i as u32), t))
    }

    /// The distinct attribute names across all sources, in deterministic
    /// (lexicographic) order.
    pub fn attribute_universe(&self) -> impl Iterator<Item = &str> {
        self.attr_source_counts.keys().map(String::as_str)
    }

    /// Number of distinct attribute names.
    pub fn attribute_count(&self) -> usize {
        self.attr_source_counts.len()
    }

    /// `f(a)`: the fraction of sources whose schema contains `a` (0 when the
    /// catalog is empty or the attribute is unknown).
    pub fn attribute_frequency(&self, attribute: &str) -> f64 {
        if self.sources.is_empty() {
            return 0.0;
        }
        let c = self.attr_source_counts.get(attribute).copied().unwrap_or(0);
        c as f64 / self.sources.len() as f64
    }

    /// Attributes whose frequency is at least `theta`, in lexicographic
    /// order (Algorithm 1 step 3).
    pub fn frequent_attributes(&self, theta: f64) -> Vec<String> {
        self.attr_source_counts
            .iter()
            .filter(|(_, &c)| {
                !self.sources.is_empty() && c as f64 / self.sources.len() as f64 >= theta
            })
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// The ids of sources whose schema contains `attribute`.
    pub fn sources_with_attribute(&self, attribute: &str) -> Vec<SourceId> {
        self.iter_sources()
            .filter(|(_, t)| t.has_attribute(attribute))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_source(Table::new("s0", ["name", "phone"]));
        c.add_source(Table::new("s1", ["name", "address"]));
        c.add_source(Table::new("s2", ["name", "phone", "email"]));
        c.add_source(Table::new("s3", ["title"]));
        c
    }

    #[test]
    fn frequencies() {
        let c = catalog();
        assert_eq!(c.attribute_frequency("name"), 0.75);
        assert_eq!(c.attribute_frequency("phone"), 0.5);
        assert_eq!(c.attribute_frequency("email"), 0.25);
        assert_eq!(c.attribute_frequency("missing"), 0.0);
    }

    #[test]
    fn frequent_attribute_filter() {
        let c = catalog();
        assert_eq!(
            c.frequent_attributes(0.5),
            vec!["name".to_string(), "phone".to_string()]
        );
        assert_eq!(c.frequent_attributes(0.76), vec![] as Vec<String>);
        // Threshold 0 admits everything.
        assert_eq!(c.frequent_attributes(0.0).len(), 5);
    }

    #[test]
    fn universe_is_sorted_and_distinct() {
        let c = catalog();
        let u: Vec<&str> = c.attribute_universe().collect();
        assert_eq!(u, vec!["address", "email", "name", "phone", "title"]);
    }

    #[test]
    fn source_lookup_and_errors() {
        let c = catalog();
        assert_eq!(c.source(SourceId(2)).unwrap().name(), "s2");
        assert!(matches!(
            c.source(SourceId(99)),
            Err(StoreError::UnknownSource(99))
        ));
    }

    #[test]
    fn sources_with_attribute_lists_ids() {
        let c = catalog();
        assert_eq!(
            c.sources_with_attribute("phone"),
            vec![SourceId(0), SourceId(2)]
        );
        assert!(c.sources_with_attribute("zzz").is_empty());
    }

    #[test]
    fn empty_catalog_behaves() {
        let c = Catalog::new();
        assert_eq!(c.source_count(), 0);
        assert_eq!(c.attribute_frequency("x"), 0.0);
        assert!(c.frequent_attributes(0.0).is_empty());
        assert_eq!(c.total_rows(), 0);
    }

    #[test]
    fn remove_source_updates_counts() {
        let mut c = catalog();
        let t = c.remove_source("s2").unwrap();
        assert_eq!(t.name(), "s2");
        assert_eq!(c.source_count(), 3);
        assert_eq!(c.attribute_frequency("email"), 0.0);
        assert!(!c.attribute_universe().any(|a| a == "email"));
        assert!((c.attribute_frequency("name") - 2.0 / 3.0).abs() < 1e-12);
        assert!(matches!(
            c.remove_source("nope"),
            Err(StoreError::UnknownSourceName(_))
        ));
    }

    #[test]
    fn display_of_source_id() {
        assert_eq!(SourceId(3).to_string(), "S3");
    }
}

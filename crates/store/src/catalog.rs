//! The catalog of registered data sources, organized into shards.

use std::collections::BTreeMap;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::{Shard, StoreError, Table};

/// Default number of sources per shard. Small enough that an incremental
/// `add_source` touches a bounded slice, large enough that shard overhead
/// is negligible at paper scale (≤ 817 sources is a single shard).
pub const DEFAULT_SHARD_CAPACITY: usize = 1024;

/// Opaque identifier of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub u32);

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The set of data sources UDI integrates over, plus the attribute universe
/// statistics Algorithm 1 needs:
///
/// - `A = attr(S1) ∪ ... ∪ attr(Sn)` (distinct attribute names), and
/// - `f(a) = |{i | a ∈ Si}| / n`, the fraction of sources containing `a`.
///
/// Sources are stored in contiguous [`Shard`]s of at most
/// [`Catalog::shard_capacity`] tables each. Ids stay positional across the
/// whole catalog (shard boundaries are invisible to id-based lookups); the
/// shard structure exists so that scans, artifact building, and incremental
/// updates can operate on bounded, independently parallelizable slices.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "CatalogRepr", into = "CatalogRepr")]
pub struct Catalog {
    shards: Vec<Shard>,
    shard_capacity: usize,
    /// attribute name → number of sources whose schema contains it
    /// (catalog-wide; each shard holds its own slice of the same stat).
    attr_source_counts: BTreeMap<String, usize>,
}

/// Flat wire format (the pre-shard layout, kept for compatibility).
#[derive(Serialize, Deserialize)]
#[serde(rename = "Catalog")]
struct CatalogRepr {
    sources: Vec<Table>,
    /// Written for the wire shape and read only by serde's `Serialize`
    /// derive; rehydration recomputes counts from `sources` instead.
    #[allow(dead_code)]
    attr_source_counts: BTreeMap<String, usize>,
}

impl From<CatalogRepr> for Catalog {
    fn from(repr: CatalogRepr) -> Catalog {
        // Counts are recomputed from the tables; the persisted map is only
        // the wire shape, never trusted over the source list itself.
        let CatalogRepr {
            sources,
            attr_source_counts: _,
        } = repr;
        let mut c = Catalog::new();
        for t in sources {
            // A serialized catalog's sources were all registered once, so
            // their count fits in the id space; `From` cannot fail, so an
            // (unreachable) overflow truncates the rehydrated catalog.
            if c.add_source(t).is_err() {
                break;
            }
        }
        c
    }
}

impl From<Catalog> for CatalogRepr {
    fn from(c: Catalog) -> CatalogRepr {
        CatalogRepr {
            sources: c
                .shards
                .into_iter()
                .flat_map(|s| s.tables().to_vec())
                .collect(),
            attr_source_counts: c.attr_source_counts,
        }
    }
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog {
            shards: Vec::new(),
            shard_capacity: DEFAULT_SHARD_CAPACITY,
            attr_source_counts: BTreeMap::new(),
        }
    }
}

impl Catalog {
    /// Empty catalog with the default shard capacity.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Empty catalog whose shards hold at most `capacity` sources each.
    /// A capacity of 0 is treated as 1.
    pub fn with_shard_capacity(capacity: usize) -> Catalog {
        Catalog {
            shard_capacity: capacity.max(1),
            ..Catalog::default()
        }
    }

    /// Sources per shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Resolve an id to `(shard index, local index)`.
    fn locate(&self, id: usize) -> Option<(usize, usize)> {
        let mut start = 0;
        for (si, shard) in self.shards.iter().enumerate() {
            if id < start + shard.len() {
                return Some((si, id - start));
            }
            start += shard.len();
        }
        None
    }

    /// Register a source table, returning its id.
    ///
    /// Ids are positional `u32`s; once the catalog holds `u32::MAX` sources
    /// the next id cannot be represented, and registration is refused with
    /// [`StoreError::SourceIdOverflow`] *before* any state is touched (the
    /// catalog is unchanged on error).
    pub fn add_source(&mut self, table: Table) -> Result<SourceId, StoreError> {
        let count = self.source_count();
        let id = u32::try_from(count)
            .map(SourceId)
            .map_err(|_| StoreError::SourceIdOverflow(count))?;
        for a in table.attributes() {
            *self.attr_source_counts.entry(a.clone()).or_insert(0) += 1;
        }
        let needs_new = self
            .shards
            .last()
            .is_none_or(|s| s.len() >= self.shard_capacity);
        if needs_new {
            self.shards.push(Shard::new());
        }
        if let Some(last) = self.shards.last_mut() {
            last.push(table);
        }
        Ok(id)
    }

    /// Remove the source named `name`, returning the dropped table.
    ///
    /// Later source ids shift down by one (ids are positional); attribute
    /// frequencies are updated in place, and a shard emptied by the removal
    /// is dropped so shard ranges stay contiguous.
    /// `Err(StoreError::UnknownSourceName)` when no source has that name.
    pub fn remove_source(&mut self, name: &str) -> Result<Table, StoreError> {
        let (si, local) = self
            .shards
            .iter()
            .enumerate()
            .find_map(|(si, s)| {
                s.tables()
                    .iter()
                    .position(|t| t.name() == name)
                    .map(|local| (si, local))
            })
            .ok_or_else(|| StoreError::UnknownSourceName(name.to_owned()))?;
        let Some(shard) = self.shards.get_mut(si) else {
            return Err(StoreError::UnknownSourceName(name.to_owned()));
        };
        let table = shard.remove(local);
        if shard.is_empty() {
            self.shards.remove(si);
        }
        for a in table.attributes() {
            if let Some(c) = self.attr_source_counts.get_mut(a) {
                *c -= 1;
                if *c == 0 {
                    self.attr_source_counts.remove(a);
                }
            }
        }
        Ok(table)
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in source-id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Fetch a shard by index.
    pub fn shard(&self, idx: usize) -> Option<&Shard> {
        self.shards.get(idx)
    }

    /// The contiguous source-id range covered by each shard, in order.
    /// Ranges partition `0..source_count()`.
    pub fn shard_ranges(&self) -> Vec<Range<usize>> {
        let mut start = 0;
        self.shards
            .iter()
            .map(|s| {
                let r = start..start + s.len();
                start += s.len();
                r
            })
            .collect()
    }

    /// The index of the shard holding `id`, if the id is registered.
    pub fn shard_of(&self, id: SourceId) -> Option<usize> {
        self.locate(id.0 as usize).map(|(si, _)| si)
    }

    /// Total number of rows across all sources.
    pub fn total_rows(&self) -> usize {
        self.shards.iter().map(Shard::row_count).sum()
    }

    /// Fetch a source by id.
    pub fn source(&self, id: SourceId) -> Result<&Table, StoreError> {
        self.locate(id.0 as usize)
            .and_then(|(si, local)| self.shards.get(si)?.table(local))
            .ok_or(StoreError::UnknownSource(id.0))
    }

    /// Iterate `(id, table)` over all sources.
    pub fn iter_sources(&self) -> impl Iterator<Item = (SourceId, &Table)> {
        self.shards
            .iter()
            .flat_map(|s| s.tables().iter())
            .enumerate()
            .map(|(i, t)| (SourceId(i as u32), t))
    }

    /// The distinct attribute names across all sources, in deterministic
    /// (lexicographic) order.
    pub fn attribute_universe(&self) -> impl Iterator<Item = &str> {
        self.attr_source_counts.keys().map(String::as_str)
    }

    /// Number of distinct attribute names.
    pub fn attribute_count(&self) -> usize {
        self.attr_source_counts.len()
    }

    /// `f(a)`: the fraction of sources whose schema contains `a` (0 when the
    /// catalog is empty or the attribute is unknown).
    pub fn attribute_frequency(&self, attribute: &str) -> f64 {
        let n = self.source_count();
        if n == 0 {
            return 0.0;
        }
        let c = self.attr_source_counts.get(attribute).copied().unwrap_or(0);
        c as f64 / n as f64
    }

    /// Attributes whose frequency is at least `theta`, in lexicographic
    /// order (Algorithm 1 step 3).
    pub fn frequent_attributes(&self, theta: f64) -> Vec<String> {
        let n = self.source_count();
        self.attr_source_counts
            .iter()
            .filter(|(_, &c)| n != 0 && c as f64 / n as f64 >= theta)
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// The ids of sources whose schema contains `attribute`.
    pub fn sources_with_attribute(&self, attribute: &str) -> Vec<SourceId> {
        self.iter_sources()
            .filter(|(_, t)| t.has_attribute(attribute))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_source(Table::new("s0", ["name", "phone"])).unwrap();
        c.add_source(Table::new("s1", ["name", "address"])).unwrap();
        c.add_source(Table::new("s2", ["name", "phone", "email"]))
            .unwrap();
        c.add_source(Table::new("s3", ["title"])).unwrap();
        c
    }

    #[test]
    fn frequencies() {
        let c = catalog();
        assert_eq!(c.attribute_frequency("name"), 0.75);
        assert_eq!(c.attribute_frequency("phone"), 0.5);
        assert_eq!(c.attribute_frequency("email"), 0.25);
        assert_eq!(c.attribute_frequency("missing"), 0.0);
    }

    #[test]
    fn frequent_attribute_filter() {
        let c = catalog();
        assert_eq!(
            c.frequent_attributes(0.5),
            vec!["name".to_string(), "phone".to_string()]
        );
        assert_eq!(c.frequent_attributes(0.76), vec![] as Vec<String>);
        // Threshold 0 admits everything.
        assert_eq!(c.frequent_attributes(0.0).len(), 5);
    }

    #[test]
    fn universe_is_sorted_and_distinct() {
        let c = catalog();
        let u: Vec<&str> = c.attribute_universe().collect();
        assert_eq!(u, vec!["address", "email", "name", "phone", "title"]);
    }

    #[test]
    fn source_lookup_and_errors() {
        let c = catalog();
        assert_eq!(c.source(SourceId(2)).unwrap().name(), "s2");
        assert!(matches!(
            c.source(SourceId(99)),
            Err(StoreError::UnknownSource(99))
        ));
    }

    #[test]
    fn sources_with_attribute_lists_ids() {
        let c = catalog();
        assert_eq!(
            c.sources_with_attribute("phone"),
            vec![SourceId(0), SourceId(2)]
        );
        assert!(c.sources_with_attribute("zzz").is_empty());
    }

    #[test]
    fn empty_catalog_behaves() {
        let c = Catalog::new();
        assert_eq!(c.source_count(), 0);
        assert_eq!(c.attribute_frequency("x"), 0.0);
        assert!(c.frequent_attributes(0.0).is_empty());
        assert_eq!(c.total_rows(), 0);
        assert_eq!(c.shard_count(), 0);
        assert!(c.shard_ranges().is_empty());
    }

    #[test]
    fn remove_source_updates_counts() {
        let mut c = catalog();
        let t = c.remove_source("s2").unwrap();
        assert_eq!(t.name(), "s2");
        assert_eq!(c.source_count(), 3);
        assert_eq!(c.attribute_frequency("email"), 0.0);
        assert!(!c.attribute_universe().any(|a| a == "email"));
        assert!((c.attribute_frequency("name") - 2.0 / 3.0).abs() < 1e-12);
        assert!(matches!(
            c.remove_source("nope"),
            Err(StoreError::UnknownSourceName(_))
        ));
    }

    #[test]
    fn display_of_source_id() {
        assert_eq!(SourceId(3).to_string(), "S3");
    }

    #[test]
    fn sharding_splits_sources_into_contiguous_ranges() {
        let mut c = Catalog::with_shard_capacity(2);
        for i in 0..5 {
            c.add_source(Table::new(format!("s{i}"), ["name"])).unwrap();
        }
        assert_eq!(c.shard_count(), 3);
        assert_eq!(c.shard_ranges(), vec![0..2, 2..4, 4..5]);
        assert_eq!(c.shard_of(SourceId(0)), Some(0));
        assert_eq!(c.shard_of(SourceId(3)), Some(1));
        assert_eq!(c.shard_of(SourceId(4)), Some(2));
        assert_eq!(c.shard_of(SourceId(5)), None);
        // Id-based access is oblivious to shard boundaries.
        assert_eq!(c.source(SourceId(3)).unwrap().name(), "s3");
        let ids: Vec<u32> = c.iter_sources().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn per_shard_counts_slice_the_global_stat() {
        let mut c = Catalog::with_shard_capacity(2);
        c.add_source(Table::new("a", ["name", "phone"])).unwrap();
        c.add_source(Table::new("b", ["name"])).unwrap();
        c.add_source(Table::new("c", ["phone"])).unwrap();
        let per_shard: usize = c.shards().iter().map(|s| s.attribute_count("phone")).sum();
        assert_eq!(per_shard, 2);
        assert_eq!(c.shard(0).unwrap().attribute_count("name"), 2);
        assert_eq!(c.shard(1).unwrap().attribute_count("name"), 0);
    }

    #[test]
    fn removal_drops_emptied_shards() {
        let mut c = Catalog::with_shard_capacity(1);
        c.add_source(Table::new("a", ["x"])).unwrap();
        c.add_source(Table::new("b", ["y"])).unwrap();
        c.add_source(Table::new("c", ["z"])).unwrap();
        assert_eq!(c.shard_count(), 3);
        c.remove_source("b").unwrap();
        assert_eq!(c.shard_count(), 2);
        assert_eq!(c.shard_ranges(), vec![0..1, 1..2]);
        // Ids shifted: "c" is now id 1.
        assert_eq!(c.source(SourceId(1)).unwrap().name(), "c");
        // A later add reuses the tail shard only if it has room (capacity 1
        // here, so a fresh shard opens).
        c.add_source(Table::new("d", ["w"])).unwrap();
        assert_eq!(c.shard_count(), 3);
    }

    #[test]
    fn serde_repr_is_flat_and_round_trips() {
        let mut c = Catalog::with_shard_capacity(2);
        c.add_source(Table::new("a", ["name"])).unwrap();
        c.add_source(Table::new("b", ["name", "phone"])).unwrap();
        c.add_source(Table::new("c", ["title"])).unwrap();
        let repr = CatalogRepr::from(c.clone());
        assert_eq!(repr.sources.len(), 3);
        assert_eq!(repr.sources[2].name(), "c");
        assert_eq!(repr.attr_source_counts.get("name"), Some(&2));
        let back = Catalog::from(repr);
        assert_eq!(back.source_count(), 3);
        assert_eq!(back.attribute_frequency("name"), 2.0 / 3.0);
        assert_eq!(back.source(SourceId(2)).unwrap().name(), "c");
        // Default capacity applies on rehydration.
        assert_eq!(back.shard_count(), 1);
    }
}

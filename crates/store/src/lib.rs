#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! In-memory relational substrate for UDI.
//!
//! The SIGMOD'08 evaluation stored each web-extracted source as a single
//! MySQL table and used MySQL's keyword search engine for the keyword
//! baselines. This crate replaces that substrate with an embedded,
//! dependency-free engine:
//!
//! - [`Value`]: typed cells (null / integer / float / text) with SQL-flavored
//!   comparison semantics, including the string-vs-numeric comparison
//!   artifact the paper observes in the Course domain;
//! - [`Table`]: a named single-table source schema plus its rows;
//! - [`Catalog`]: the set of registered sources with the attribute universe
//!   and per-attribute source frequencies that Algorithm 1 consumes;
//! - [`KeywordIndex`]: an inverted index over cell tokens and attribute
//!   names backing the `KeywordNaive` / `KeywordStruct` / `KeywordStrict`
//!   baselines.
//!
//! # Quickstart
//!
//! ```
//! use udi_store::{Catalog, Table, Value};
//!
//! let mut t = Table::new("s1", ["name", "phone"]);
//! t.push_row(vec![Value::text("Alice"), Value::text("123-4567")]).unwrap();
//!
//! let mut catalog = Catalog::new();
//! let sid = catalog.add_source(t).unwrap();
//! assert_eq!(catalog.source(sid).unwrap().row_count(), 1);
//! assert_eq!(catalog.attribute_frequency("phone"), 1.0);
//! ```

pub mod catalog;
pub mod csv;
pub mod keyword;
pub mod shard;
pub mod table;
pub mod value;

pub use catalog::{Catalog, SourceId, DEFAULT_SHARD_CAPACITY};
pub use csv::CsvError;
pub use keyword::{KeywordIndex, RowRef};
pub use shard::Shard;
pub use table::{Row, Table};
pub use value::{like_match, Value};

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A row's arity does not match the table schema.
    ArityMismatch {
        /// Table the row was pushed into.
        table: String,
        /// Number of columns the schema declares.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// The table declares the same attribute name twice.
    DuplicateAttribute {
        /// Table with the duplicate.
        table: String,
        /// The repeated attribute name.
        attribute: String,
    },
    /// Lookup of an unknown attribute.
    UnknownAttribute {
        /// Table that was searched.
        table: String,
        /// The missing attribute name.
        attribute: String,
    },
    /// Lookup of an unknown source id.
    UnknownSource(u32),
    /// Removal of an unknown source name.
    UnknownSourceName(String),
    /// The catalog already holds `u32::MAX` sources, so the next positional
    /// [`SourceId`] would not fit in its `u32` representation. The payload is
    /// the source count at which registration was refused.
    SourceIdOverflow(usize),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::ArityMismatch {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "row arity {got} does not match schema of `{table}` ({expected} columns)"
                )
            }
            StoreError::DuplicateAttribute { table, attribute } => {
                write!(
                    f,
                    "table `{table}` declares attribute `{attribute}` more than once"
                )
            }
            StoreError::UnknownAttribute { table, attribute } => {
                write!(f, "table `{table}` has no attribute `{attribute}`")
            }
            StoreError::UnknownSource(id) => write!(f, "no source with id {id}"),
            StoreError::UnknownSourceName(name) => write!(f, "no source named `{name}`"),
            StoreError::SourceIdOverflow(count) => write!(
                f,
                "catalog holds {count} sources; the next source id would overflow u32"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = StoreError::ArityMismatch {
            table: "t".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("arity 3"));
        let e = StoreError::UnknownAttribute {
            table: "t".into(),
            attribute: "x".into(),
        };
        assert!(e.to_string().contains("`x`"));
        let e = StoreError::UnknownSource(7);
        assert!(e.to_string().contains('7'));
        let e = StoreError::DuplicateAttribute {
            table: "t".into(),
            attribute: "a".into(),
        };
        assert!(e.to_string().contains("more than once"));
        let e = StoreError::SourceIdOverflow(4_294_967_296);
        assert!(e.to_string().contains("4294967296"));
        assert!(e.to_string().contains("overflow"));
    }
}

//! The prepared-query serving layer: compile once, execute many times, in
//! parallel.
//!
//! Every answer path used to redo the same per-query work on every call:
//! resolve the referenced attributes to mediated clusters, then — per
//! source — pool the p-mapping's mappings into distinct binding signatures
//! (`BTreeMap<Vec<Option<AttrId>>, f64>`). For a serving workload that
//! repeats queries over hundreds of sources, that preparation dominates and
//! is identical call after call. This module splits it out:
//!
//! * [`PreparedQuery`] — a query compiled against the current stage
//!   artifacts into execution-ready per-source bindings. Compilation
//!   filters incomplete signatures and zero-mass bindings up front and
//!   resolves attribute ids to source attribute names, so execution touches
//!   only tables and probabilities.
//! * `PlanCache` (crate-private) — an interior-mutable map `(path, query text) → plan`,
//!   consulted transparently by every `UdiSystem::answer*` call. A plan
//!   carries the engine [`generation`](crate::SetupEngine::generation) it
//!   was compiled under; any mutation (`add_source`, `remove_source`,
//!   `apply_feedback`) or refresh moves the generation, so stale plans are
//!   recompiled on next use — the cache can never serve answers computed
//!   from replaced artifacts. Lookups emit `query.plan.hit` /
//!   `query.plan.miss` counters.
//! * `fan_out` (crate-private) — the parallel executor: sources spread across a scoped
//!   thread pool (`config.threads`, the same convention as setup stage 3)
//!   and the per-source answer vectors merged back **in catalog order**, so
//!   results are byte-identical to the sequential path at any thread count.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use udi_query::{AnswerSet, AnswerTuple, Binding};
use udi_store::{SourceId, Table};

use crate::system::UdiSystem;

/// Upper bound on cached plans. Small: a serving workload repeats a modest
/// set of query shapes, and one plan is a few bindings per source. When the
/// cache is full, the smallest keys are evicted first (deterministic, no
/// clock involved).
const PLAN_CACHE_CAP: usize = 256;

/// Which answer path a plan was compiled for. Part of the cache key: the
/// same query text pools probability mass differently per path (the
/// consolidated p-mapping, the per-schema p-mappings weighted by schema
/// probability, or the top mapping alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlanPath {
    /// Consolidated mediated schema + consolidated p-mappings — the
    /// production path, shared by `answer`, `answer_by_tuple`, and
    /// `answer_aggregate` (identical pooling, different execution).
    Consolidated,
    /// Directly against the p-med-schema (Definition 3.3), per possible
    /// schema weighted by its probability.
    Pmed,
    /// Only each source's single most probable mapping, taken as certain.
    TopMapping,
}

/// One source's execution-ready compiled form: every complete, positive-
/// mass binding the pooled p-mapping induces, in deterministic signature
/// order, with attribute ids already resolved to source attribute names.
pub(crate) type SourceBindings = Vec<(Binding, f64)>;

/// The compiled body of a [`PreparedQuery`]: per-source bindings, indexed
/// by catalog position (= `SourceId.0`).
#[derive(Debug)]
pub(crate) struct QueryPlan {
    /// `per_source[i]` holds source `i`'s pooled bindings.
    pub(crate) per_source: Vec<SourceBindings>,
}

/// A query compiled against one generation of the engine's stage
/// artifacts. Obtained from [`UdiSystem::prepare`] (or transparently via
/// the plan cache inside every `answer*` call).
#[derive(Debug)]
pub struct PreparedQuery {
    /// Engine generation the plan was compiled under.
    generation: u64,
    /// `None` when some referenced attribute is unknown or unclustered —
    /// the query yields no answers until the artifacts change.
    plan: Option<QueryPlan>,
}

impl PreparedQuery {
    /// The engine [`generation`](crate::SetupEngine::generation) this plan
    /// was compiled under. The plan is current while the engine still
    /// reports the same generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the query can produce answers at all under this plan's
    /// artifacts (every referenced attribute resolved to a mediated
    /// cluster).
    pub fn is_answerable(&self) -> bool {
        self.plan.is_some()
    }

    /// Total pooled bindings across all sources — a size diagnostic.
    pub fn binding_count(&self) -> usize {
        self.plan
            .as_ref()
            .map(|p| p.per_source.iter().map(Vec::len).sum())
            .unwrap_or(0)
    }

    pub(crate) fn plan(&self) -> Option<&QueryPlan> {
        self.plan.as_ref()
    }
}

/// Interior-mutable plan cache, owned by [`UdiSystem`] next to the engine.
///
/// Keys are `(path, rendered query text)`; values carry their compile-time
/// generation and are treated as misses once the engine generation moves.
/// A `BTreeMap` keeps every traversal (stale purge, eviction) in key order
/// — no iteration-order nondeterminism can reach answers.
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    inner: Mutex<BTreeMap<(PlanPath, String), Arc<PreparedQuery>>>,
}

impl PlanCache {
    /// Fresh, empty cache.
    pub(crate) fn new() -> PlanCache {
        PlanCache::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<(PlanPath, String), Arc<PreparedQuery>>> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is always structurally valid, so recover it
        // rather than propagate the poison.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up the plan for `(path, text)` at `generation`, compiling (and
    /// caching) it on miss or staleness. Emits one `query.plan.hit` or
    /// `query.plan.miss` counter per call.
    pub(crate) fn get_or_compile(
        &self,
        path: PlanPath,
        text: &str,
        generation: u64,
        recorder: &udi_obs::Recorder,
        compile: impl FnOnce() -> Option<QueryPlan>,
    ) -> Arc<PreparedQuery> {
        let key = (path, text.to_owned());
        if let Some(hit) = self.lock().get(&key).cloned() {
            if hit.generation == generation {
                recorder.count("query.plan.hit", 1);
                return hit;
            }
        }
        recorder.count("query.plan.miss", 1);
        // Compile outside the lock: a long compile must not stall other
        // queries' warm lookups. Two racing compiles of the same key are
        // benign — both produce the identical plan, last insert wins.
        let prepared = Arc::new(PreparedQuery {
            generation,
            plan: compile(),
        });
        let mut cache = self.lock();
        // Any generation mismatch means every older plan is stale; purge
        // them all, then bound the live set deterministically. Eviction is
        // replace-aware: recompiling a key that is already resident swaps
        // the value in place and must not evict an unrelated live plan.
        cache.retain(|_, v| v.generation == generation);
        if !cache.contains_key(&key) {
            while cache.len() >= PLAN_CACHE_CAP {
                cache.pop_first();
            }
        }
        cache.insert(key, prepared.clone());
        prepared
    }

    /// Cached plans (any generation) — for diagnostics and tests.
    pub(crate) fn len(&self) -> usize {
        self.lock().len()
    }
}

impl Clone for PlanCache {
    /// Snapshot clone: the plans themselves are shared (`Arc`), only the
    /// map is copied. Used by the serve layer's clone-on-refresh path so a
    /// new system snapshot starts with the old snapshot's warm cache.
    fn clone(&self) -> PlanCache {
        PlanCache {
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

/// Execute `per_source` over every source in the catalog, fanned out
/// across `config.threads` scoped workers, and merge the per-source answer
/// vectors back in catalog order. Returns the merged [`AnswerSet`] plus
/// the summed `(tuples scanned, answers produced)` counters.
///
/// Parallelism is invisible in the output: sources are independent, each
/// worker owns a contiguous chunk, and the merge re-concatenates chunks in
/// order — byte-identical to running sequentially. When a user trace sink
/// is installed, each source gets a `query.source` span parented on
/// `parent` (cross-thread, the same pattern as setup's per-row spans);
/// without a sink those spans are skipped to keep the hot path free of
/// per-source sink traffic.
pub(crate) fn fan_out<F>(
    sys: &UdiSystem,
    plan: &QueryPlan,
    parent: u64,
    per_source: F,
) -> (AnswerSet, u64, u64)
where
    F: Fn(&Table, &[(Binding, f64)]) -> (Vec<AnswerTuple>, u64) + Sync,
{
    let sources: Vec<(SourceId, &Table)> = sys.catalog().iter_sources().collect();
    let n = sources.len();
    let threads = sys.engine().config().threads;
    let trace = sys.engine().trace_enabled();
    let recorder = sys.engine().recorder();

    let run_one = |(sid, table): (SourceId, &Table)| -> (SourceId, Vec<AnswerTuple>, u64) {
        let idx = sid.0 as usize;
        // A plan/catalog shape mismatch (a plan compiled for fewer sources
        // than the catalog now holds) must not panic a worker thread and
        // take the whole request down. Degrade that source to an empty
        // binding set — it contributes no answers — and count the event so
        // the mismatch is visible in traces.
        let bindings = match plan.per_source.get(idx) {
            Some(b) => b.as_slice(),
            None => {
                recorder.count("query.plan.shape_mismatch", 1);
                &[]
            }
        };
        if trace {
            let mut span = recorder.span_with_parent("query.source", parent);
            span.field("source", idx);
            let (tuples, scanned) = per_source(table, bindings);
            span.field("tuples_scanned", scanned);
            span.field("answers", tuples.len());
            (sid, tuples, scanned)
        } else {
            let (tuples, scanned) = per_source(table, bindings);
            (sid, tuples, scanned)
        }
    };

    let results: Vec<(SourceId, Vec<AnswerTuple>, u64)> = if threads <= 1 || n < 2 {
        sources.into_iter().map(run_one).collect()
    } else {
        let n_workers = threads.min(n);
        let chunk = n.div_ceil(n_workers);
        let mut work = sources;
        let mut parts: Vec<Vec<(SourceId, &Table)>> = Vec::new();
        while !work.is_empty() {
            let take = chunk.min(work.len());
            parts.push(work.drain(..take).collect());
        }
        let chunks: Vec<Vec<(SourceId, Vec<AnswerTuple>, u64)>> = std::thread::scope(|scope| {
            let run_one = &run_one;
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| scope.spawn(move || part.into_iter().map(run_one).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // Per-source execution is panic-free; a worker panic
                    // can only be a bug surfacing inside the closure, and
                    // swallowing it would corrupt answers. Forward the
                    // original payload unchanged.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        chunks.into_iter().flatten().collect()
    };

    let mut set = AnswerSet::new();
    let (mut scanned, mut produced) = (0u64, 0u64);
    for (sid, tuples, s) in results {
        scanned += s;
        produced += tuples.len() as u64;
        set.add_source(sid, tuples);
    }
    (set, scanned, produced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn empty_plan() -> Option<QueryPlan> {
        Some(QueryPlan {
            per_source: Vec::new(),
        })
    }

    fn fill(cache: &PlanCache, n: usize, rec: &udi_obs::Recorder) {
        for i in 0..n {
            cache.get_or_compile(
                PlanPath::Consolidated,
                &format!("q{i:04}"),
                1,
                rec,
                empty_plan,
            );
        }
    }

    #[test]
    fn recompiling_a_resident_key_at_cap_evicts_nothing() {
        let rec = udi_obs::Recorder::disabled();
        let cache = PlanCache::new();
        fill(&cache, PLAN_CACHE_CAP - 1, &rec);
        // Two concurrent compiles of the same absent key: the barrier
        // inside `compile` guarantees both pass the miss check before
        // either inserts, so the second insert runs with the key already
        // resident and the cache at cap — exactly the shape where the old
        // eviction popped an unrelated live plan on every recompile.
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    cache.get_or_compile(PlanPath::Consolidated, "race", 1, &rec, || {
                        barrier.wait();
                        empty_plan()
                    });
                });
            }
        });
        assert_eq!(cache.len(), PLAN_CACHE_CAP);
        let held = cache.lock();
        assert!(
            held.contains_key(&(PlanPath::Consolidated, "q0000".to_owned())),
            "replacing a resident key must not evict an unrelated live plan"
        );
        assert!(held.contains_key(&(PlanPath::Consolidated, "race".to_owned())));
    }

    #[test]
    fn fresh_key_at_cap_evicts_exactly_one() {
        let rec = udi_obs::Recorder::disabled();
        let cache = PlanCache::new();
        fill(&cache, PLAN_CACHE_CAP, &rec);
        assert_eq!(cache.len(), PLAN_CACHE_CAP);
        cache.get_or_compile(PlanPath::Consolidated, "zz-new", 1, &rec, empty_plan);
        assert_eq!(cache.len(), PLAN_CACHE_CAP);
        let held = cache.lock();
        assert!(!held.contains_key(&(PlanPath::Consolidated, "q0000".to_owned())));
        assert!(held.contains_key(&(PlanPath::Consolidated, "zz-new".to_owned())));
    }
}

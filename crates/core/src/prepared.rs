//! The prepared-query serving layer: compile once, execute many times,
//! without the readers ever taking a lock.
//!
//! Every answer path used to redo the same per-query work on every call:
//! resolve the referenced attributes to mediated clusters, then — per
//! source — pool the p-mapping's mappings into distinct binding signatures
//! (`BTreeMap<Vec<Option<AttrId>>, f64>`). For a serving workload that
//! repeats queries over hundreds of sources, that preparation dominates and
//! is identical call after call. This module splits it out:
//!
//! * [`PreparedQuery`] — a query compiled against the current stage
//!   artifacts into execution-ready per-source bindings. Compilation
//!   filters incomplete signatures and zero-mass bindings up front and
//!   resolves attribute ids to source attribute names, so execution touches
//!   only tables and probabilities.
//! * `PlanCache` (crate-private) — a **lock-free** map `(path, query text)
//!   → plan` consulted transparently by every `UdiSystem::answer*` call.
//!   The structure is a fixed array of append-only bucket chains built
//!   from `OnceLock` links: lookups are plain atomic loads (wait-free, no
//!   mutex, no poisoning), inserts publish a new tail node with a single
//!   `OnceLock::set`. Nothing is ever unlinked — a recompile *shadows* the
//!   older node (lookups prefer the latest match) and artifact mutations
//!   reset the whole cache via `&mut UdiSystem`, which is what actually
//!   bounds stale growth. A plan carries the engine
//!   [`generation`](crate::SetupEngine::generation) it was compiled under;
//!   a generation mismatch is a miss, so the cache can never serve answers
//!   computed from replaced artifacts. Lookups emit `query.plan.hit` /
//!   `query.plan.miss` counters.
//! * `fan_out` / `fan_out_parallel` (crate-private) — the executors.
//!   `fan_out` is strictly sequential and backs every certified
//!   `UdiSystem::answer*` path (the hot-path certificate proves those
//!   spawn no threads); `fan_out_parallel` spreads sources across a scoped
//!   thread pool (`config.threads`, the same convention as setup stage 3)
//!   and merges the per-source answer vectors back **in catalog order**,
//!   so its results are byte-identical to the sequential path at any
//!   thread count. Opt in via [`UdiSystem::answer_parallel`](crate::UdiSystem::answer_parallel).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use udi_query::{AnswerSet, AnswerTuple, Binding};
use udi_store::{SourceId, Table};

use crate::system::UdiSystem;

/// Upper bound on cached plans (counting shadowed recompiles). Small: a
/// serving workload repeats a modest set of query shapes, and one plan is a
/// few bindings per source. The chains are append-only, so at the cap the
/// cache stops accepting new plans (callers still get their compiled plan,
/// it just isn't retained); any artifact mutation resets the cache and the
/// bound with it.
const PLAN_CACHE_CAP: usize = 256;

/// Bucket-chain count. Power of two, sized so chains stay short at the
/// cap; more buckets would only buy cache-line spread the workload can't
/// use.
const PLAN_CACHE_BUCKETS: usize = 16;

/// Which answer path a plan was compiled for. Part of the cache key: the
/// same query text pools probability mass differently per path (the
/// consolidated p-mapping, the per-schema p-mappings weighted by schema
/// probability, or the top mapping alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlanPath {
    /// Consolidated mediated schema + consolidated p-mappings — the
    /// production path, shared by `answer`, `answer_by_tuple`, and
    /// `answer_aggregate` (identical pooling, different execution).
    Consolidated,
    /// Directly against the p-med-schema (Definition 3.3), per possible
    /// schema weighted by its probability.
    Pmed,
    /// Only each source's single most probable mapping, taken as certain.
    TopMapping,
}

/// One source's execution-ready compiled form: every complete, positive-
/// mass binding the pooled p-mapping induces, in deterministic signature
/// order, with attribute ids already resolved to source attribute names.
pub(crate) type SourceBindings = Vec<(Binding, f64)>;

/// The compiled body of a [`PreparedQuery`]: per-source bindings, indexed
/// by catalog position (= `SourceId.0`).
#[derive(Debug)]
pub(crate) struct QueryPlan {
    /// `per_source[i]` holds source `i`'s pooled bindings.
    pub(crate) per_source: Vec<SourceBindings>,
}

/// A query compiled against one generation of the engine's stage
/// artifacts. Obtained from [`UdiSystem::prepare`] (or transparently via
/// the plan cache inside every `answer*` call).
#[derive(Debug)]
pub struct PreparedQuery {
    /// Engine generation the plan was compiled under.
    generation: u64,
    /// `None` when some referenced attribute is unknown or unclustered —
    /// the query yields no answers until the artifacts change.
    plan: Option<QueryPlan>,
}

impl PreparedQuery {
    /// The engine [`generation`](crate::SetupEngine::generation) this plan
    /// was compiled under. The plan is current while the engine still
    /// reports the same generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the query can produce answers at all under this plan's
    /// artifacts (every referenced attribute resolved to a mediated
    /// cluster).
    pub fn is_answerable(&self) -> bool {
        self.plan.is_some()
    }

    /// Total pooled bindings across all sources — a size diagnostic.
    pub fn binding_count(&self) -> usize {
        self.plan
            .as_ref()
            .map(|p| p.per_source.iter().map(Vec::len).sum())
            .unwrap_or(0)
    }

    pub(crate) fn plan(&self) -> Option<&QueryPlan> {
        self.plan.as_ref()
    }
}

/// One link in a bucket chain. Immutable once published; `next` is set at
/// most once, so a reader walking the chain only ever performs `OnceLock::
/// get` — an atomic load.
#[derive(Debug)]
struct Node {
    key: (PlanPath, String),
    value: Arc<PreparedQuery>,
    next: OnceLock<Box<Node>>,
}

impl Node {
    /// Whether a node with the same key appears later in this node's
    /// chain (a later recompile shadows this one).
    fn shadowed(&self) -> bool {
        let mut cur = self.next.get();
        while let Some(n) = cur {
            if n.key == self.key {
                return true;
            }
            cur = n.next.get();
        }
        false
    }
}

/// Lock-free plan cache, owned by [`UdiSystem`] next to the engine.
///
/// Keys are `(path, rendered query text)`, hashed (FNV-1a) onto a fixed
/// set of append-only chains; values carry their compile-time generation
/// and are treated as misses once the engine generation moves. Readers
/// never block: every traversal is a sequence of `OnceLock::get` atomic
/// loads, which is what lets `UdiSystem::answer*` certify lock-free under
/// the `hot-path-cert` audit pass. Writers publish with `OnceLock::set`;
/// two racing compiles of one key both succeed and the later append
/// shadows the earlier (both plans are identical by construction).
#[derive(Debug)]
pub(crate) struct PlanCache {
    buckets: [OnceLock<Box<Node>>; PLAN_CACHE_BUCKETS],
    /// Nodes appended so far, across all chains — enforces the cap.
    appended: AtomicUsize,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache {
            buckets: std::array::from_fn(|_| OnceLock::new()),
            appended: AtomicUsize::new(0),
        }
    }
}

/// FNV-1a over the path tag and query text — deterministic across runs
/// (unlike `RandomState`), cheap, and good enough to spread a few hundred
/// query strings over 16 chains.
fn bucket_of(path: PlanPath, text: &str) -> usize {
    let tag: u8 = match path {
        PlanPath::Consolidated => 1,
        PlanPath::Pmed => 2,
        PlanPath::TopMapping => 3,
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in std::iter::once(tag).chain(text.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % PLAN_CACHE_BUCKETS
}

impl PlanCache {
    /// Fresh, empty cache.
    pub(crate) fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Wait-free lookup: walk the bucket chain with atomic loads and
    /// return the **latest** value published for `(path, text)`, if any.
    fn lookup(&self, path: PlanPath, text: &str) -> Option<Arc<PreparedQuery>> {
        let mut found: Option<&Arc<PreparedQuery>> = None;
        let mut cur = self
            .buckets
            .get(bucket_of(path, text))
            .and_then(|b| b.get());
        while let Some(node) = cur {
            if node.key.0 == path && node.key.1 == text {
                found = Some(&node.value);
            }
            cur = node.next.get();
        }
        found.cloned()
    }

    /// Publish `value` at the tail of its key's chain. Refuses (silently)
    /// once the cap is reached — the caller keeps its compiled plan, the
    /// cache just doesn't retain it.
    fn append(&self, key: (PlanPath, String), value: Arc<PreparedQuery>) {
        // Reserve a slot first: `fetch_add` hands out at most
        // `PLAN_CACHE_CAP` previous values below the cap, so the node
        // count is exact even under racing inserts.
        if self.appended.fetch_add(1, Ordering::Relaxed) >= PLAN_CACHE_CAP {
            self.appended.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let mut node = Box::new(Node {
            key,
            value,
            next: OnceLock::new(),
        });
        let Some(mut slot) = self.buckets.get(bucket_of(node.key.0, &node.key.1)) else {
            return;
        };
        loop {
            match slot.set(node) {
                Ok(()) => return,
                Err(returned) => {
                    node = returned;
                    // The slot just observed full stays full forever
                    // (OnceLock is write-once), so this get() cannot fail.
                    let Some(tail) = slot.get() else { return };
                    slot = &tail.next;
                }
            }
        }
    }

    /// Look up the plan for `(path, text)` at `generation`, compiling (and
    /// caching) it on miss or staleness. Emits one `query.plan.hit` or
    /// `query.plan.miss` counter per call.
    pub(crate) fn get_or_compile(
        &self,
        path: PlanPath,
        text: &str,
        generation: u64,
        recorder: &udi_obs::Recorder,
        compile: impl FnOnce() -> Option<QueryPlan>,
    ) -> Arc<PreparedQuery> {
        if let Some(hit) = self.lookup(path, text) {
            if hit.generation == generation {
                recorder.count("query.plan.hit", 1);
                return hit;
            }
        }
        recorder.count("query.plan.miss", 1);
        let prepared = Arc::new(PreparedQuery {
            generation,
            plan: compile(),
        });
        self.append((path, text.to_owned()), prepared.clone());
        prepared
    }

    /// Distinct cached keys (any generation) — for diagnostics and tests.
    /// Shadowed recompiles of a key count once. Wait-free, like `lookup`.
    pub(crate) fn len(&self) -> usize {
        let mut live = 0usize;
        for bucket in &self.buckets {
            let mut cur = bucket.get();
            while let Some(node) = cur {
                if !node.shadowed() {
                    live += 1;
                }
                cur = node.next.get();
            }
        }
        live
    }
}

impl Clone for PlanCache {
    /// Compacting clone: the plans themselves are shared (`Arc`); only the
    /// latest node per key is carried over, dropping shadowed recompiles.
    /// Used by the serve layer's clone-mutate-publish path so a new system
    /// snapshot starts with the old snapshot's warm cache.
    fn clone(&self) -> PlanCache {
        let fresh = PlanCache::new();
        for bucket in &self.buckets {
            let mut cur = bucket.get();
            while let Some(node) = cur {
                if !node.shadowed() {
                    fresh.append(node.key.clone(), node.value.clone());
                }
                cur = node.next.get();
            }
        }
        fresh
    }
}

/// Execute `per_source` over every source in the catalog, **sequentially**
/// and in catalog order, returning the merged [`AnswerSet`] plus the
/// summed `(tuples scanned, answers produced)` counters.
///
/// This is the executor behind every certified `UdiSystem::answer*` path:
/// it spawns no threads and takes no locks, so the `hot-path-cert` audit
/// pass can prove the whole read path quiescent. Serving loops that want
/// source-level parallelism opt in explicitly via
/// [`UdiSystem::answer_parallel`](crate::UdiSystem::answer_parallel),
/// which routes through [`fan_out_parallel`] instead. When a user trace
/// sink is installed, each source gets a `query.source` span parented on
/// `parent`; without a sink those spans are skipped to keep the hot path
/// free of per-source sink traffic.
pub(crate) fn fan_out<F>(
    sys: &UdiSystem,
    plan: &QueryPlan,
    parent: u64,
    per_source: F,
) -> (AnswerSet, u64, u64)
where
    F: Fn(&Table, &[(Binding, f64)]) -> (Vec<AnswerTuple>, u64) + Sync,
{
    let run_one = source_runner(sys, plan, parent, &per_source);
    let results: Vec<(SourceId, Vec<AnswerTuple>, u64)> =
        sys.catalog().iter_sources().map(run_one).collect();
    merge(results)
}

/// [`fan_out`] with the per-source work spread across `config.threads`
/// scoped workers. Parallelism is invisible in the output: sources are
/// independent, each worker owns a contiguous chunk, and the merge
/// re-concatenates chunks in catalog order — byte-identical to the
/// sequential executor at any thread count.
pub(crate) fn fan_out_parallel<F>(
    sys: &UdiSystem,
    plan: &QueryPlan,
    parent: u64,
    per_source: F,
) -> (AnswerSet, u64, u64)
where
    F: Fn(&Table, &[(Binding, f64)]) -> (Vec<AnswerTuple>, u64) + Sync,
{
    let sources: Vec<(SourceId, &Table)> = sys.catalog().iter_sources().collect();
    let n = sources.len();
    let threads = sys.engine().config().threads;
    if threads <= 1 || n < 2 {
        let run_one = source_runner(sys, plan, parent, &per_source);
        return merge(sources.into_iter().map(run_one).collect());
    }
    let run_one = source_runner(sys, plan, parent, &per_source);
    let n_workers = threads.min(n);
    let chunk = n.div_ceil(n_workers);
    let mut work = sources;
    let mut parts: Vec<Vec<(SourceId, &Table)>> = Vec::new();
    while !work.is_empty() {
        let take = chunk.min(work.len());
        parts.push(work.drain(..take).collect());
    }
    let chunks: Vec<Vec<(SourceId, Vec<AnswerTuple>, u64)>> = std::thread::scope(|scope| {
        let run_one = &run_one;
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| scope.spawn(move || part.into_iter().map(run_one).collect()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Per-source execution is panic-free; a worker panic
                // can only be a bug surfacing inside the closure, and
                // swallowing it would corrupt answers. Forward the
                // original payload unchanged.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    merge(chunks.into_iter().flatten().collect())
}

/// The shared per-source step: resolve the plan's bindings for one source
/// (degrading a plan/catalog shape mismatch to an empty binding set rather
/// than panicking — counted as `query.plan.shape_mismatch`), run the
/// caller's closure, and wrap it in a `query.source` span when tracing.
fn source_runner<'a, F>(
    sys: &'a UdiSystem,
    plan: &'a QueryPlan,
    parent: u64,
    per_source: &'a F,
) -> impl Fn((SourceId, &'a Table)) -> (SourceId, Vec<AnswerTuple>, u64) + Sync + 'a
where
    F: Fn(&Table, &[(Binding, f64)]) -> (Vec<AnswerTuple>, u64) + Sync,
{
    let trace = sys.engine().trace_enabled();
    let recorder = sys.engine().recorder();
    move |(sid, table): (SourceId, &Table)| {
        let idx = sid.0 as usize;
        let bindings = match plan.per_source.get(idx) {
            Some(b) => b.as_slice(),
            None => {
                recorder.count("query.plan.shape_mismatch", 1);
                &[]
            }
        };
        if trace {
            let mut span = recorder.span_with_parent("query.source", parent);
            span.field("source", idx);
            let (tuples, scanned) = per_source(table, bindings);
            span.field("tuples_scanned", scanned);
            span.field("answers", tuples.len());
            (sid, tuples, scanned)
        } else {
            let (tuples, scanned) = per_source(table, bindings);
            (sid, tuples, scanned)
        }
    }
}

/// Concatenate per-source results (already in catalog order) into one
/// answer set plus the summed counters.
fn merge(results: Vec<(SourceId, Vec<AnswerTuple>, u64)>) -> (AnswerSet, u64, u64) {
    let mut set = AnswerSet::new();
    let (mut scanned, mut produced) = (0u64, 0u64);
    for (sid, tuples, s) in results {
        scanned += s;
        produced += tuples.len() as u64;
        set.add_source(sid, tuples);
    }
    (set, scanned, produced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn empty_plan() -> Option<QueryPlan> {
        Some(QueryPlan {
            per_source: Vec::new(),
        })
    }

    fn fill(cache: &PlanCache, n: usize, rec: &udi_obs::Recorder) {
        for i in 0..n {
            cache.get_or_compile(
                PlanPath::Consolidated,
                &format!("q{i:04}"),
                1,
                rec,
                empty_plan,
            );
        }
    }

    #[test]
    fn hit_returns_the_cached_plan_without_recompiling() {
        let rec = udi_obs::Recorder::disabled();
        let cache = PlanCache::new();
        let first = cache.get_or_compile(PlanPath::Consolidated, "q", 1, &rec, empty_plan);
        let second = cache.get_or_compile(PlanPath::Consolidated, "q", 1, &rec, || {
            panic!("hit must not recompile")
        });
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn racing_recompiles_of_one_key_shadow_not_duplicate() {
        let rec = udi_obs::Recorder::disabled();
        let cache = PlanCache::new();
        fill(&cache, 8, &rec);
        // Two concurrent compiles of the same absent key: the barrier
        // inside `compile` guarantees both pass the miss check before
        // either publishes, so both append — the later node shadows the
        // earlier and `len` still counts the key once.
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    cache.get_or_compile(PlanPath::Consolidated, "race", 1, &rec, || {
                        barrier.wait();
                        empty_plan()
                    });
                });
            }
        });
        assert_eq!(cache.len(), 9, "shadowed recompiles must not inflate len");
        assert!(cache.lookup(PlanPath::Consolidated, "race").is_some());
        assert!(cache.lookup(PlanPath::Consolidated, "q0000").is_some());
    }

    #[test]
    fn fresh_key_at_cap_is_served_but_not_retained() {
        let rec = udi_obs::Recorder::disabled();
        let cache = PlanCache::new();
        fill(&cache, PLAN_CACHE_CAP, &rec);
        assert_eq!(cache.len(), PLAN_CACHE_CAP);
        // The chains are append-only: at the cap nothing is evicted and
        // nothing new is retained — the caller still gets a usable plan.
        let plan = cache.get_or_compile(PlanPath::Consolidated, "zz-new", 1, &rec, empty_plan);
        assert!(plan.is_answerable());
        assert_eq!(cache.len(), PLAN_CACHE_CAP);
        assert!(cache.lookup(PlanPath::Consolidated, "zz-new").is_none());
        assert!(cache.lookup(PlanPath::Consolidated, "q0000").is_some());
    }

    #[test]
    fn stale_generation_is_a_miss_and_latest_shadows() {
        let rec = udi_obs::Recorder::disabled();
        let cache = PlanCache::new();
        cache.get_or_compile(PlanPath::Consolidated, "q", 1, &rec, empty_plan);
        let v2 = cache.get_or_compile(PlanPath::Consolidated, "q", 2, &rec, empty_plan);
        assert_eq!(v2.generation(), 2);
        assert_eq!(cache.len(), 1);
        let seen = cache.lookup(PlanPath::Consolidated, "q").expect("cached");
        assert_eq!(seen.generation(), 2, "lookup must prefer the latest node");
    }

    #[test]
    fn clone_compacts_shadowed_nodes() {
        let rec = udi_obs::Recorder::disabled();
        let cache = PlanCache::new();
        cache.get_or_compile(PlanPath::Consolidated, "q", 1, &rec, empty_plan);
        cache.get_or_compile(PlanPath::Consolidated, "q", 2, &rec, empty_plan);
        fill(&cache, 4, &rec);
        let snap = cache.clone();
        assert_eq!(snap.len(), cache.len());
        assert_eq!(snap.appended.load(Ordering::Relaxed), snap.len());
        let seen = snap.lookup(PlanPath::Consolidated, "q").expect("cached");
        assert_eq!(seen.generation(), 2);
    }
}

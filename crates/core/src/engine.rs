//! The incremental setup engine: the four pipeline stages decomposed into
//! cached, invalidatable artifacts.
//!
//! [`super::system::UdiSystem::setup`] and the incremental mutations
//! ([`UdiSystem::add_source`](crate::UdiSystem::add_source),
//! [`UdiSystem::remove_source`](crate::UdiSystem::remove_source),
//! [`UdiSystem::apply_feedback`](crate::UdiSystem::apply_feedback)) are all
//! thin drivers over one [`SetupEngine::refresh`], so the batch and
//! incremental paths cannot diverge: a refresh recomputes exactly the stage
//! artifacts whose inputs changed and reuses the rest, and the reused
//! artifacts are bit-identical to what a from-scratch setup would produce.
//!
//! Stage artifacts and their invalidation rules:
//!
//! | artifact                      | cached as                  | invalidated by |
//! |-------------------------------|----------------------------|----------------|
//! | schema set + attribute stats  | [`SchemaSet`] (maintained in place) | never — mutations edit it directly |
//! | pairwise similarities         | `sim_cache` keyed by attribute-id pair | feedback on the pair (overwritten, not dropped) |
//! | similarity graph              | recomputed each refresh (cheap: cache lookups) | — |
//! | enumerated mediated schemas   | `schemas_raw` + graph signature | any change to the graph's nodes/edges/weights/kinds |
//! | schema probabilities          | recomputed each refresh (Algorithm 2 is linear) | — |
//! | per-(source, schema) p-mappings | `rows[source][schema]`    | source marked dirty, or the schema's cluster content changed |
//! | per-group max-entropy solves  | [`SolveCache`] (canonical form) | never — keys are content-addressed |
//! | consolidated schema + mappings | recomputed each refresh (cheap) | — |
//!
//! Why the reuse is sound: a p-mapping for `(source, mediated schema)`
//! depends only on the source's attribute list, the schema's cluster
//! contents, and the pairwise similarities between them. Vocabulary ids are
//! append-only (and removal keeps them stable), similarities are pinned in
//! `sim_cache`, and mediated schemas are compared by value — so an
//! unchanged `(source, schema-content)` pair under unchanged similarities
//! must yield the identical mapping, and we reuse it without re-solving.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use udi_obs::{CounterSink, FanoutSink, Recorder, Sink, Stopwatch};
use udi_schema::{
    assign_probabilities, build_similarity_graph_via, consolidate_schemas,
    enumerate_mediated_schemas, generate_pmapping_cached, AttrId, Consolidator, EdgeKind,
    FrozenMatrix, Mapping, MediatedSchema, PMapping, PMedSchema, SchemaSet, SimilarityGraph,
    SolveCache, Vocabulary,
};
use udi_similarity::{BlockIndex, Similarity};
use udi_store::{Catalog, Table};

use crate::feedback::Feedback;
use crate::pipeline::{CacheStats, SetupReport, SetupTimings, UdiConfig};
use crate::UdiError;

/// Content signature of the similarity graph: nodes plus every edge with
/// its exact weight bits and certainty class. Equal signatures ⇒ identical
/// graphs ⇒ the `2^u` schema enumeration would return the same list, so it
/// is skipped.
type GraphSignature = (Vec<AttrId>, Vec<(AttrId, AttrId, u64, bool)>);

/// A source's previous p-mapping row, taken out of the engine for moving:
/// `None` if the source was dirty, otherwise one `Option<PMapping>` slot per
/// old schema, emptied as reuse claims each column.
type TakenRow = Option<Vec<Option<PMapping>>>;

fn signature(graph: &SimilarityGraph) -> GraphSignature {
    (
        graph.nodes.clone(),
        graph
            .edges
            .iter()
            .map(|e| (e.a, e.b, e.weight.to_bits(), e.kind == EdgeKind::Certain))
            .collect(),
    )
}

/// The stage-artifact engine behind [`crate::UdiSystem`].
///
/// Owns the catalog and every intermediate product of the setup pipeline,
/// with enough bookkeeping to recompute only what a mutation invalidated.
/// All mutation entry points ([`add_source`](SetupEngine::add_source),
/// [`remove_source`](SetupEngine::remove_source),
/// [`apply_feedback`](SetupEngine::apply_feedback)) only *mark* work; the
/// actual recomputation happens in the next [`refresh`](SetupEngine::refresh).
///
/// `Clone` produces an independent engine over copied artifacts, with two
/// deliberate shares: the `stats` counter aggregate (an `Arc`) and the
/// recorder keep pointing at the original's sinks, so a cloned snapshot's
/// telemetry lands in the same place. The serve layer's clone-on-refresh
/// path relies on this — it clones the current snapshot, mutates the clone
/// off to the side, and publishes it atomically.
#[derive(Debug, Clone)]
pub struct SetupEngine {
    catalog: Catalog,
    config: UdiConfig,
    /// Accumulated human judgments, folded into `sim_cache` on refresh.
    feedback: Feedback,
    /// Stage 1 artifact, maintained in place by mutations.
    schema_set: SchemaSet,
    /// Pinned pairwise similarities, keyed `(min, max)`. Entries are only
    /// ever *overwritten* (by feedback), never dropped, so every artifact
    /// downstream sees one consistent similarity assignment. Ordered so
    /// that iteration (graph signatures, matrix freezing) is deterministic.
    sim_cache: BTreeMap<(AttrId, AttrId), f64>,
    /// n-gram blocking index over the vocabulary, keyed so that index key
    /// `k` is `AttrId(k)`. Vocabulary ids are append-only (and stable
    /// across source removals), so the index is only ever *extended* —
    /// `add_source` never invalidates previously computed postings, and an
    /// incremental refresh re-grams only the newly interned names.
    block: BlockIndex,
    /// Signature of the graph that produced `schemas_raw`.
    graph_sig: Option<GraphSignature>,
    /// Stage 2 artifact: enumerated candidate schemas, pre-probability, in
    /// enumeration order.
    schemas_raw: Vec<MediatedSchema>,
    /// The current p-med-schema (post-probability, sorted). `None` only
    /// before the first refresh.
    pmed: Option<PMedSchema>,
    /// Schema list of `pmed`, in `pmed.schemas()` order — the column order
    /// of `rows`.
    schema_list: Vec<MediatedSchema>,
    /// Stage 3 artifact: `rows[source][schema]`. `None` marks a source
    /// whose row must be (re)computed on the next refresh.
    rows: Vec<Option<Vec<PMapping>>>,
    /// Stage 4 artifacts.
    consolidated: Option<MediatedSchema>,
    cons_rows: Vec<PMapping>,
    /// Canonical-form memo of per-group max-entropy solves, shared across
    /// the whole catalog and across refreshes.
    solve_cache: SolveCache,
    /// Diagnostics of the most recent refresh.
    report: SetupReport,
    /// Always-on aggregate sink: authoritative `engine.*`/`maxent.*`
    /// counter totals, from which each report's [`CacheStats`] view is
    /// derived as a before/after delta.
    stats: Arc<CounterSink>,
    /// Telemetry recorder behind every span and counter the engine emits.
    /// Always enabled: it feeds at least `stats`, plus whatever sink
    /// [`set_sink`](SetupEngine::set_sink) installs.
    recorder: Recorder,
    /// Whether a user trace sink is installed (see
    /// [`set_sink`](SetupEngine::set_sink)) — gates per-source query spans,
    /// which are worth recording in a trace but too chatty for the
    /// always-on counter aggregate.
    user_sink: bool,
    /// Monotonic artifact generation: bumped by every mutation entry point
    /// and every successful refresh. Prepared query plans are compiled
    /// against one generation and silently recompiled when it moves — this
    /// is the plan-cache invalidation rule (see `crate::prepared`).
    generation: u64,
}

impl SetupEngine {
    /// Engine over `catalog` with no artifacts computed yet. Call
    /// [`refresh`](SetupEngine::refresh) to configure.
    pub fn new(catalog: Catalog, config: UdiConfig) -> SetupEngine {
        let mut schema_set = SchemaSet::default();
        for (_, table) in catalog.iter_sources() {
            schema_set.add_source(table.name(), table.attributes().iter().map(String::as_str));
        }
        let rows = vec![None; catalog.source_count()];
        let stats = Arc::new(CounterSink::new());
        let recorder = Recorder::new(stats.clone());
        let mut solve_cache = SolveCache::new();
        solve_cache.set_recorder(recorder.clone());
        SetupEngine {
            catalog,
            config,
            feedback: Feedback::new(),
            schema_set,
            sim_cache: BTreeMap::new(),
            block: BlockIndex::bigram(),
            graph_sig: None,
            schemas_raw: Vec::new(),
            pmed: None,
            schema_list: Vec::new(),
            rows,
            consolidated: None,
            cons_rows: Vec::new(),
            solve_cache,
            report: SetupReport::default(),
            stats,
            recorder,
            user_sink: false,
            generation: 0,
        }
    }

    /// Install (or remove) a user trace sink. Engine telemetry — stage
    /// spans, per-row build spans, cache counters, solver observations —
    /// then fans out to `sink` in addition to the internal counter
    /// aggregate; pass `None` to go back to counters only.
    pub fn set_sink(&mut self, sink: Option<Arc<dyn Sink>>) {
        self.user_sink = sink.is_some();
        self.recorder = match sink {
            Some(user) => Recorder::new(Arc::new(FanoutSink::new(vec![user, self.stats.clone()]))),
            None => Recorder::new(self.stats.clone()),
        };
        self.solve_cache.set_recorder(self.recorder.clone());
    }

    /// Whether a user trace sink is currently installed. Query execution
    /// emits per-source spans only when tracing — they are diagnostic
    /// detail, not serving-path metrics.
    pub fn trace_enabled(&self) -> bool {
        self.user_sink
    }

    /// The current artifact generation. Moves on every mutation
    /// ([`add_source`](SetupEngine::add_source),
    /// [`remove_source`](SetupEngine::remove_source),
    /// [`apply_feedback`](SetupEngine::apply_feedback)) and every
    /// successful [`refresh`](SetupEngine::refresh); anything derived from
    /// the query-facing artifacts (prepared plans, external caches) is
    /// stale once the generation it was built under differs from this.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The engine's telemetry recorder. Query answering records its spans
    /// and counters through this, so one trace covers setup and queries.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Engine assembled from explicit parts (the
    /// [`crate::UdiSystem::from_parts`] path). The supplied p-med-schema and
    /// p-mappings are adopted verbatim; no graph signature is recorded, so
    /// the first subsequent mutation + refresh re-derives the schema from
    /// the similarity pipeline (replacing the manual parts).
    pub(crate) fn from_parts(
        catalog: Catalog,
        pmed: PMedSchema,
        pmappings: Vec<Vec<PMapping>>,
        config: UdiConfig,
    ) -> Result<SetupEngine, UdiError> {
        if catalog.source_count() == 0 {
            return Err(UdiError::EmptyCatalog);
        }
        if pmappings.len() != catalog.source_count() {
            return Err(UdiError::MappingRowMismatch {
                expected: catalog.source_count(),
                got: pmappings.len(),
            });
        }
        for (i, row) in pmappings.iter().enumerate() {
            if row.len() != pmed.len() {
                return Err(UdiError::MappingColumnMismatch {
                    source: i,
                    expected: pmed.len(),
                    got: row.len(),
                });
            }
        }
        let mut engine = SetupEngine::new(catalog, config);
        let schema_list: Vec<MediatedSchema> =
            pmed.schemas().iter().map(|(m, _)| m.clone()).collect();
        let consolidated = consolidate_schemas(&schema_list);
        let consolidator = Consolidator::new(&pmed, &consolidated);
        let cons_rows: Vec<PMapping> = pmappings
            .iter()
            .map(|per_schema| consolidator.consolidate(per_schema))
            .collect();
        // Timings are deliberately `None` on the manual-assembly path:
        // nothing was measured because nothing was computed beyond
        // consolidation. `n_frequent` is still derivable from the schema
        // set, so it is reported.
        engine.report = SetupReport {
            n_sources: engine.catalog.source_count(),
            n_attributes: engine.schema_set.vocab().len(),
            n_frequent: engine
                .schema_set
                .frequent_attributes(engine.config.params.theta)
                .len(),
            n_schemas: pmed.len(),
            n_mappings: pmappings.iter().flatten().map(PMapping::len).sum(),
            n_consolidated_mappings: cons_rows.iter().map(PMapping::len).sum(),
            ..SetupReport::default()
        };
        engine.schema_list = schema_list;
        engine.pmed = Some(pmed);
        engine.rows = pmappings.into_iter().map(Some).collect();
        engine.consolidated = Some(consolidated);
        engine.cons_rows = cons_rows;
        Ok(engine)
    }

    /// Register a new source. Only the new source's p-mapping row is marked
    /// for computation; existing artifacts are invalidated only if the new
    /// source actually changes the similarity graph (new frequent
    /// attributes, shifted frequencies) — [`refresh`](SetupEngine::refresh)
    /// detects that via the graph signature.
    /// `Err(UdiError::Store)` if the catalog's `u32` id space is exhausted;
    /// the engine is left untouched in that case (the catalog is registered
    /// first, before any engine-side state moves).
    pub fn add_source(&mut self, table: Table) -> Result<(), UdiError> {
        let name = table.name().to_owned();
        let attrs: Vec<String> = table.attributes().to_vec();
        self.catalog.add_source(table).map_err(UdiError::Store)?;
        self.schema_set
            .add_source(&name, attrs.iter().map(String::as_str));
        self.rows.push(None);
        self.generation += 1;
        Ok(())
    }

    /// Drop the source named `name`. Vocabulary ids stay stable (orphaned
    /// attributes fall out of the frequent set by frequency); surviving
    /// sources keep their cached rows unless the schema list changes.
    pub fn remove_source(&mut self, name: &str) -> Result<Table, UdiError> {
        let table = self.catalog.remove_source(name).map_err(UdiError::Store)?;
        let idx = self
            .schema_set
            .sources()
            .iter()
            .position(|s| s.name == name)
            .ok_or(UdiError::Internal(
                "schema set lost alignment with the catalog",
            ))?;
        self.schema_set.remove_source(name);
        self.rows.remove(idx);
        self.generation += 1;
        Ok(table)
    }

    /// Fold human judgments in: judged pairs are pinned to similarity 1/0
    /// in the similarity cache, and only the sources that contain a judged
    /// attribute are marked dirty. Downstream stages recompute on the next
    /// refresh exactly as far as the graph signature and schema list
    /// actually move.
    pub fn apply_feedback(&mut self, feedback: &Feedback) {
        let vocab = self.schema_set.vocab();
        // Mark sources containing a judged endpoint before merging, using
        // the *new* judgments only.
        let mut judged_attrs: BTreeSet<AttrId> = BTreeSet::new();
        for (a, b, _) in feedback.judgments() {
            if let Some(x) = vocab.id_of(a) {
                judged_attrs.insert(x);
            }
            if let Some(y) = vocab.id_of(b) {
                judged_attrs.insert(y);
            }
        }
        for (i, source) in self.schema_set.sources().iter().enumerate() {
            if source.attrs.iter().any(|a| judged_attrs.contains(a)) {
                if let Some(slot) = self.rows.get_mut(i) {
                    *slot = None;
                }
            }
        }
        self.feedback.merge(feedback);
        // Cached pair values are corrected eagerly as well, so the graph
        // signature comparison in the next refresh sees the post-feedback
        // world.
        apply_feedback_overrides(&self.feedback, &self.schema_set, &mut self.sim_cache);
        self.generation += 1;
    }

    /// Recompute every invalidated stage artifact under `measure`,
    /// reusing the rest. Idempotent: a refresh with nothing dirty reuses
    /// every row and answers every solve from cache.
    ///
    /// On error (e.g. a matching-count explosion) the query-facing
    /// artifacts — p-med-schema, consolidated schema and consolidated
    /// p-mappings — keep serving the state of the last successful refresh;
    /// the per-schema p-mapping rows are marked dirty and recomputed by
    /// the next successful refresh.
    pub fn refresh(&mut self, measure: &(dyn Similarity + Sync)) -> Result<(), UdiError> {
        if self.catalog.source_count() == 0 {
            return Err(UdiError::EmptyCatalog);
        }
        let params = self.config.params.clone();
        let mut timings = SetupTimings::default();
        let counters_before = self.stats.snapshot();
        let mut root = self.recorder.span("engine.refresh");
        root.field("n_sources", self.catalog.source_count());

        // Stage 1 — import. The schema set is maintained in place by the
        // mutations; here we only re-pin judged pairs (covers attributes
        // interned since the judgment arrived).
        let t0 = Stopwatch::start();
        let s1 = root.child("engine.import");
        apply_feedback_overrides(&self.feedback, &self.schema_set, &mut self.sim_cache);
        s1.close();
        timings.import = t0.elapsed();

        // Stage 2 — p-med-schema. The graph itself is cheap to rebuild
        // (cache lookups); the expensive 2^u enumeration is skipped when
        // the signature is unchanged. Probabilities (Algorithm 2) are
        // linear and always recomputed.
        let t1 = Stopwatch::start();
        let mut s2 = root.child("engine.med_schema");
        let wrapped = self.feedback.wrap(measure);
        let nodes = self.schema_set.frequent_attributes(params.theta);
        // Block: extend the n-gram index over any newly interned names and
        // narrow the quadratic frequent-pair space to candidates sharing a
        // gram. Pruned pairs stay out of the similarity cache, which the
        // frozen matrix reads as similarity 0 — the same treatment every
        // sub-threshold pair already gets, so the graph (and therefore the
        // enumeration) is unchanged on corpora where blocking is lossless.
        // Judged pairs bypass blocking entirely: stage 1 pins them straight
        // into the cache.
        let stage2_cands: Option<Vec<(u32, u32)>> = if self.config.blocking {
            let mut sb = s2.child("setup.block");
            let vocab_len = self.schema_set.vocab().len();
            while self.block.len() < vocab_len {
                let count = self.block.len();
                let next =
                    u32::try_from(count)
                        .map(AttrId)
                        .map_err(|_| UdiError::IdSpaceExhausted {
                            what: "blocking attr",
                            count,
                        })?;
                self.block.insert(self.schema_set.vocab().name(next));
            }
            let keys: Vec<u32> = nodes.iter().map(|a| a.0).collect();
            let cands = self.block.pairs_among(&keys);
            let all = keys.len().saturating_sub(1) * keys.len() / 2;
            self.recorder
                .count("engine.block.candidates", cands.len() as u64);
            self.recorder.count(
                "engine.block.pruned",
                all.saturating_sub(cands.len()) as u64,
            );
            sb.field("candidates", cands.len());
            sb.field("pruned", all.saturating_sub(cands.len()));
            sb.close();
            Some(cands)
        } else {
            None
        };
        let ss = s2.child("setup.score");
        match &stage2_cands {
            Some(cands) => ensure_pairs(
                &mut self.sim_cache,
                self.schema_set.vocab(),
                &wrapped,
                cands.iter().map(|&(a, b)| (AttrId(a), AttrId(b))),
                &self.recorder,
            ),
            None => ensure_pairs(
                &mut self.sim_cache,
                self.schema_set.vocab(),
                &wrapped,
                nodes.iter().enumerate().flat_map(|(i, &a)| {
                    nodes
                        .get(i + 1..)
                        .unwrap_or(&[])
                        .iter()
                        .map(move |&b| (a, b))
                }),
                &self.recorder,
            ),
        }
        ss.close();
        let matrix = FrozenMatrix::from_entries(self.sim_cache.iter().map(|(&k, &v)| (k, v)));
        let graph = build_similarity_graph_via(&self.schema_set, &matrix, &params);
        let sig = signature(&graph);
        let mut schemas_reenumerated = false;
        if self.graph_sig.as_ref() != Some(&sig) {
            self.schemas_raw = enumerate_mediated_schemas(&graph, &params);
            self.graph_sig = Some(sig);
            schemas_reenumerated = true;
            self.recorder.count("engine.schemas.reenumerated", 1);
        }
        let mut weighted = assign_probabilities(self.schemas_raw.clone(), &self.schema_set);
        weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let pmed = PMedSchema::new(weighted);
        s2.field("n_schemas", pmed.len());
        s2.close();
        timings.med_schema = t1.elapsed();

        // Stage 3 — p-mapping rows. Reuse granularity is per
        // (source, schema-content): a clean source keeps every mapping
        // whose mediated schema also exists in the new list.
        let t2 = Stopwatch::start();
        let s3 = root.child("engine.pmappings");
        let stage3_id = s3.id();
        let new_list: Vec<MediatedSchema> = pmed.schemas().iter().map(|(m, _)| m.clone()).collect();
        let rows_computed_now: usize;
        let new_rows = {
            let all_attrs: Vec<AttrId> = self.schema_set.vocab().iter().map(|(id, _)| id).collect();
            let cluster_attrs: Vec<AttrId> = {
                let mut set = BTreeSet::new();
                for m in &new_list {
                    set.extend(m.attribute_set());
                }
                set.into_iter().collect()
            };
            // Mapping generation reads (source attribute, cluster attribute)
            // similarities; under blocking only gram-sharing pairs are
            // scored. The candidate stream is deterministic and catalog-
            // ordered: cluster attributes ascend (BTreeSet) and each one's
            // candidates ascend (the index emits them sorted).
            if self.config.blocking {
                let mut sb = s3.child("setup.block");
                let cands: Vec<(AttrId, AttrId)> = cluster_attrs
                    .iter()
                    .flat_map(|&c| {
                        self.block
                            .candidates_of(c.0)
                            .into_iter()
                            .map(move |a| (AttrId(a), c))
                    })
                    .collect();
                let all = all_attrs.len() * cluster_attrs.len();
                self.recorder
                    .count("engine.block.candidates", cands.len() as u64);
                self.recorder.count(
                    "engine.block.pruned",
                    all.saturating_sub(cands.len()) as u64,
                );
                sb.field("candidates", cands.len());
                sb.field("pruned", all.saturating_sub(cands.len()));
                sb.close();
                let ss = s3.child("setup.score");
                ensure_pairs(
                    &mut self.sim_cache,
                    self.schema_set.vocab(),
                    &wrapped,
                    cands.into_iter(),
                    &self.recorder,
                );
                ss.close();
            } else {
                let ss = s3.child("setup.score");
                ensure_pairs(
                    &mut self.sim_cache,
                    self.schema_set.vocab(),
                    &wrapped,
                    all_attrs
                        .iter()
                        .flat_map(|&a| cluster_attrs.iter().map(move |&c| (a, c))),
                    &self.recorder,
                );
                ss.close();
            }
            let matrix = FrozenMatrix::from_entries(self.sim_cache.iter().map(|(&k, &v)| (k, v)));
            // udi-audit: allow(deterministic-iteration, "reuse-plan index: queried per new schema by key, never iterated")
            let old_pos: HashMap<&MediatedSchema, usize> = self
                .schema_list
                .iter()
                .enumerate()
                .map(|(i, m)| (m, i))
                .collect();
            // Per (source, schema): Some(old column) to reuse, None to
            // compute. Schemas are pairwise distinct, so each old column is
            // claimed by at most one new column — reused mappings can be
            // *moved*, not cloned (cloning thousands of surviving rows
            // costs more than the actual recomputation being avoided).
            let plan: Vec<Vec<Option<usize>>> = self
                .rows
                .iter()
                .map(|row| match row {
                    Some(_) => new_list.iter().map(|m| old_pos.get(m).copied()).collect(),
                    None => vec![None; new_list.len()],
                })
                .collect();
            let rows_reused: usize = plan
                .iter()
                .map(|r| r.iter().filter(|e| e.is_some()).count())
                .sum();
            rows_computed_now = plan
                .iter()
                .map(|r| r.iter().filter(|e| e.is_none()).count())
                .sum();
            if rows_reused > 0 {
                self.recorder
                    .count("engine.rows.reused", rows_reused as u64);
            }
            if rows_computed_now > 0 {
                self.recorder
                    .count("engine.rows.computed", rows_computed_now as u64);
            }

            // Per-shard telemetry: one span per shard with its dirty-row
            // count, so traces show exactly which shard's candidates an
            // incremental mutation touched. Trace-only (like the per-source
            // query spans): too chatty for the counter aggregate.
            if self.user_sink {
                for (si, range) in self.catalog.shard_ranges().iter().enumerate() {
                    let dirty = range
                        .clone()
                        .filter(|&i| {
                            plan.get(i)
                                .is_some_and(|row| row.iter().any(Option::is_none))
                        })
                        .count();
                    let mut sp = self.recorder.span_with_parent("engine.shard", stage3_id);
                    sp.field("shard", si);
                    sp.field("sources", range.len());
                    sp.field("dirty_sources", dirty);
                    sp.close();
                }
            }

            let sources = self.schema_set.sources();
            let n = sources.len();
            // Take the old rows out for moving; on error below, the rows
            // are left all-dirty and the next refresh recomputes them.
            let mut work: Vec<(usize, TakenRow)> = std::mem::take(&mut self.rows)
                .into_iter()
                .map(|row| row.map(|v| v.into_iter().map(Some).collect()))
                .enumerate()
                .collect();
            let plan = &plan;
            let new_list_ref = &new_list;
            let matrix_ref = &matrix;
            let params_ref = &params;
            let solve_cache = &self.solve_cache;
            // Worker threads cannot carry the stage-3 `Span` guard; they
            // clone the recorder and parent their build spans on its id.
            let recorder = self.recorder.clone();
            let build_row = move |(i, mut old): (usize, TakenRow)| {
                new_list_ref
                    .iter()
                    .enumerate()
                    .map(|(j, med)| match plan.get(i).and_then(|row| row.get(j)).copied().flatten() {
                        Some(oj) => old
                            .as_mut()
                            .and_then(|row| row.get_mut(oj))
                            .and_then(Option::take)
                            .ok_or(UdiError::Internal(
                                "p-mapping reuse plan pointed at a missing or already-claimed column",
                            )),
                        None => match sources.get(i) {
                            Some(source) => {
                                let mut span =
                                    recorder.span_with_parent("engine.pmapping.build", stage3_id);
                                span.field("source", i);
                                span.field("schema", j);
                                generate_pmapping_cached(
                                    source,
                                    med,
                                    matrix_ref,
                                    params_ref,
                                    Some(solve_cache),
                                )
                                .map_err(UdiError::from)
                            }
                            None => Err(UdiError::Internal(
                                "p-mapping build pointed at a missing source",
                            )),
                        },
                    })
                    .collect::<Result<Vec<PMapping>, UdiError>>()
            };
            let built: Result<Vec<Vec<PMapping>>, UdiError> = if self.config.threads <= 1 || n < 2 {
                work.into_iter().map(build_row).collect()
            } else {
                let n_workers = self.config.threads.min(n);
                let chunk = n.div_ceil(n_workers);
                // Shard ranges are the parallelism unit: when the catalog
                // has at least as many shards as workers, part boundaries
                // align with shard boundaries, so each worker touches whole
                // shards and per-shard artifacts stay thread-local. Small
                // catalogs (fewer shards than workers) fall back to plain
                // contiguous chunking. Either way parts partition the
                // sources in catalog order and results are concatenated in
                // the same order, so the output is identical — partitioning
                // is a wall-clock knob only.
                let shard_ranges = self.catalog.shard_ranges();
                let mut parts: Vec<Vec<(usize, TakenRow)>> = Vec::new();
                if shard_ranges.len() >= n_workers {
                    let mut acc = 0usize;
                    let mut sizes: Vec<usize> = Vec::new();
                    for r in &shard_ranges {
                        acc += r.len();
                        if acc >= chunk {
                            sizes.push(acc);
                            acc = 0;
                        }
                    }
                    if acc > 0 {
                        sizes.push(acc);
                    }
                    for size in sizes {
                        let take = size.min(work.len());
                        parts.push(work.drain(..take).collect());
                    }
                    if !work.is_empty() {
                        parts.push(std::mem::take(&mut work));
                    }
                } else {
                    while !work.is_empty() {
                        let take = chunk.min(work.len());
                        parts.push(work.drain(..take).collect());
                    }
                }
                let results: Vec<Result<Vec<Vec<PMapping>>, UdiError>> =
                    std::thread::scope(|scope| {
                        let build_row = &build_row;
                        let handles: Vec<_> = parts
                            .into_iter()
                            .map(|part| {
                                scope.spawn(move || part.into_iter().map(build_row).collect())
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| {
                                h.join().unwrap_or(Err(UdiError::Internal(
                                    "a p-mapping worker thread panicked",
                                )))
                            })
                            .collect()
                    });
                results
                    .into_iter()
                    .try_fold(Vec::with_capacity(n), |mut all, r| {
                        all.extend(r?);
                        Ok(all)
                    })
            };
            match built {
                Ok(rows) => rows,
                Err(e) => {
                    self.rows = vec![None; n];
                    return Err(e);
                }
            }
        };
        s3.close();
        timings.pmappings = t2.elapsed();

        // Stage 4 — recomputed whenever anything upstream moved (schema
        // probabilities shift whenever the catalog does, and they weight
        // every consolidated mapping), with the refinement table hoisted
        // out of the per-source loop via `Consolidator`. A refresh where
        // nothing moved — same schemas, bit-identical probabilities, every
        // row reused — keeps the previous consolidation outright.
        let t3 = Stopwatch::start();
        let s4 = root.child("engine.consolidate");
        let pmed_unchanged = !schemas_reenumerated
            && self.schema_list == new_list
            && self.pmed.as_ref().is_some_and(|old| {
                old.schemas()
                    .iter()
                    .zip(pmed.schemas())
                    .all(|((_, p0), (_, p1))| p0.to_bits() == p1.to_bits())
            });
        let reusable = (pmed_unchanged && rows_computed_now == 0)
            .then(|| self.consolidated.take())
            .flatten();
        let (consolidated, cons_rows) = match reusable {
            Some(prev) => (prev, std::mem::take(&mut self.cons_rows)),
            None => {
                let consolidated = consolidate_schemas(&new_list);
                let consolidator = Consolidator::new(&pmed, &consolidated);
                let cons_rows = new_rows
                    .iter()
                    .map(|per_schema| consolidator.consolidate(per_schema))
                    .collect();
                (consolidated, cons_rows)
            }
        };
        s4.close();
        timings.consolidation = t3.elapsed();

        // Commit — everything below is infallible, so an error above
        // leaves the previous artifacts fully intact. The CacheStats view
        // is derived from the sink: whatever the refresh recorded is what
        // the report says.
        let stats = cache_stats_between(&counters_before, &self.stats.snapshot());
        root.field("n_schemas", pmed.len());
        root.close();
        self.report = SetupReport {
            timings: Some(timings),
            n_sources: self.catalog.source_count(),
            n_attributes: self.schema_set.vocab().len(),
            n_frequent: nodes.len(),
            n_schemas: pmed.len(),
            n_mappings: new_rows.iter().flatten().map(PMapping::len).sum(),
            n_consolidated_mappings: cons_rows.iter().map(PMapping::len).sum(),
            cache: stats,
        };
        self.pmed = Some(pmed);
        self.schema_list = new_list;
        self.rows = new_rows.into_iter().map(Some).collect();
        self.consolidated = Some(consolidated);
        self.cons_rows = cons_rows;
        self.generation += 1;
        Ok(())
    }

    /// The source catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The setup configuration.
    pub fn config(&self) -> &UdiConfig {
        &self.config
    }

    /// Change the worker-thread count for subsequent setup refreshes *and*
    /// parallel query execution. Purely a wall-clock knob: results are
    /// identical at any value (stage 3 and query fan-out both process
    /// sources deterministically and merge in catalog order), so prepared
    /// plans stay valid.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// Accumulated feedback.
    pub fn feedback(&self) -> &Feedback {
        &self.feedback
    }

    /// Replace the accumulated feedback without marking anything dirty —
    /// for snapshot restore, where the adopted artifacts already reflect
    /// the feedback. The judgments are re-pinned on the next refresh.
    pub(crate) fn set_feedback(&mut self, feedback: Feedback) {
        self.feedback = feedback;
    }

    /// The imported schema set.
    pub fn schema_set(&self) -> &SchemaSet {
        &self.schema_set
    }

    /// The current p-med-schema. Panics before the first successful
    /// refresh (the engine is only exposed configured).
    pub fn pmed(&self) -> &PMedSchema {
        // udi-audit: allow(no-panic-in-lib, "documented panic: UdiSystem only exposes a refreshed engine")
        self.pmed.as_ref().expect("engine not refreshed yet")
    }

    /// The p-mapping between source `src` and possible schema `schema`.
    /// Panics for a source added after the last successful refresh.
    pub fn pmapping(&self, src: usize, schema: usize) -> &PMapping {
        // udi-audit: allow(no-panic-in-lib, "documented panic: indexing a source added after the last refresh")
        &self.rows[src].as_ref().expect("source not yet configured")[schema]
    }

    /// The consolidated mediated schema.
    pub fn consolidated(&self) -> &MediatedSchema {
        self.consolidated
            .as_ref()
            // udi-audit: allow(no-panic-in-lib, "documented panic: UdiSystem only exposes a refreshed engine")
            .expect("engine not refreshed yet")
    }

    /// The consolidated p-mapping of source `src`. An out-of-range index
    /// reads as the trivial empty mapping (sources only gain rows through
    /// refresh, so the fallback is inert in practice).
    pub fn consolidated_pmapping(&self, src: usize) -> &PMapping {
        // udi-audit: allow(shared-mutable-static, "write-once fallback row; no observable mutation after init")
        static EMPTY: OnceLock<PMapping> = OnceLock::new();
        self.cons_rows
            .get(src)
            .unwrap_or_else(|| EMPTY.get_or_init(|| PMapping::new(vec![(Mapping::empty(), 1.0)])))
    }

    /// Diagnostics of the last refresh (or the manual assembly).
    pub fn report(&self) -> &SetupReport {
        &self.report
    }

    /// Cumulative hit/miss counters of the shared max-entropy solve cache.
    pub fn solve_cache_totals(&self) -> (u64, u64) {
        (self.solve_cache.hits(), self.solve_cache.misses())
    }
}

/// Pin every judged pair present in the vocabulary to 1/0 in the
/// similarity cache (latest judgment wins — `Feedback` already resolves
/// contradictions).
fn apply_feedback_overrides(
    feedback: &Feedback,
    set: &SchemaSet,
    sim_cache: &mut BTreeMap<(AttrId, AttrId), f64>,
) {
    let vocab = set.vocab();
    for (a, b, same) in feedback.judgments() {
        if let (Some(x), Some(y)) = (vocab.id_of(a), vocab.id_of(b)) {
            if x != y {
                sim_cache.insert((x.min(y), x.max(y)), if same { 1.0 } else { 0.0 });
            }
        }
    }
}

/// Fill the similarity cache for every requested pair, counting hits and
/// misses. Identity pairs are skipped (both matrix flavors serve them
/// without a cache entry). Hit/miss totals are tallied locally and emitted
/// as two counter deltas at the end — one sink interaction per call, not
/// per pair, so the loop stays as hot as before instrumentation.
fn ensure_pairs(
    sim_cache: &mut BTreeMap<(AttrId, AttrId), f64>,
    vocab: &Vocabulary,
    measure: &dyn Similarity,
    pairs: impl Iterator<Item = (AttrId, AttrId)>,
    recorder: &Recorder,
) {
    let (mut hits, mut misses) = (0u64, 0u64);
    for (a, b) in pairs {
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        match sim_cache.entry(key) {
            std::collections::btree_map::Entry::Occupied(_) => hits += 1,
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(measure.similarity(vocab.name(key.0), vocab.name(key.1)));
                misses += 1;
            }
        }
    }
    if hits > 0 {
        recorder.count("engine.sim.hit", hits);
    }
    if misses > 0 {
        recorder.count("engine.sim.miss", misses);
    }
}

/// The [`CacheStats`] view of one refresh: the delta between two snapshots
/// of the engine's always-on counter sink.
fn cache_stats_between(
    before: &BTreeMap<&'static str, u64>,
    after: &BTreeMap<&'static str, u64>,
) -> CacheStats {
    let delta = |name: &str| -> u64 {
        after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
    };
    CacheStats {
        sim_hits: delta("engine.sim.hit") as usize,
        sim_misses: delta("engine.sim.miss") as usize,
        schemas_reenumerated: delta("engine.schemas.reenumerated") > 0,
        rows_reused: delta("engine.rows.reused") as usize,
        rows_computed: delta("engine.rows.computed") as usize,
        solve_hits: delta("maxent.solve.hit"),
        solve_misses: delta("maxent.solve.miss"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_store::Table;

    fn table(name: &str, attrs: &[&str]) -> Table {
        let mut t = Table::new(name, attrs.iter().copied());
        let row: Vec<String> = attrs.iter().map(|a| format!("{a}-val")).collect();
        t.push_raw_row(row).unwrap();
        t
    }

    fn people_catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, attrs) in [
            ("s1", vec!["name", "phone", "address"]),
            ("s2", vec!["name", "phone-no", "addr"]),
            ("s3", vec!["name", "phone", "address"]),
        ] {
            c.add_source(table(name, &attrs)).unwrap();
        }
        c
    }

    #[test]
    fn refresh_twice_is_all_cache_hits() {
        let measure = UdiConfig::default().measure.build();
        let mut e = SetupEngine::new(people_catalog(), UdiConfig::default());
        e.refresh(&*measure).unwrap();
        let first = e.report().cache;
        assert!(first.sim_misses > 0);
        assert!(first.rows_computed > 0);
        assert_eq!(first.rows_reused, 0);

        e.refresh(&*measure).unwrap();
        let second = e.report().cache;
        assert_eq!(second.sim_misses, 0, "all pair similarities pinned");
        assert_eq!(second.rows_computed, 0, "all rows reused");
        assert!(second.rows_reused > 0);
        assert!(!second.schemas_reenumerated, "graph signature unchanged");
        assert_eq!(second.solve_misses, 0);
    }

    #[test]
    fn add_source_recomputes_only_the_new_row() {
        let measure = UdiConfig::default().measure.build();
        let mut e = SetupEngine::new(people_catalog(), UdiConfig::default());
        e.refresh(&*measure).unwrap();
        let schemas_before = e.pmed().len();

        // A source whose attributes are all existing vocabulary: the graph
        // signature is untouched (same frequent set, same weights), so
        // only the new row is computed.
        e.add_source(table("s4", &["name", "phone"])).unwrap();
        e.refresh(&*measure).unwrap();
        let stats = e.report().cache;
        assert_eq!(e.report().n_sources, 4);
        assert_eq!(stats.rows_computed, schemas_before, "one new row");
        assert_eq!(stats.rows_reused, 3 * schemas_before, "old rows survive");
    }

    #[test]
    fn remove_source_drops_the_row_and_keeps_ids_stable() {
        let measure = UdiConfig::default().measure.build();
        let mut e = SetupEngine::new(people_catalog(), UdiConfig::default());
        e.refresh(&*measure).unwrap();
        let phone_no = e.schema_set().vocab().id_of("phone-no").unwrap();

        let dropped = e.remove_source("s2").unwrap();
        assert_eq!(dropped.name(), "s2");
        e.refresh(&*measure).unwrap();
        assert_eq!(e.report().n_sources, 2);
        assert_eq!(e.schema_set().vocab().id_of("phone-no"), Some(phone_no));
        assert_eq!(e.schema_set().frequency(phone_no), 0.0);
        assert!(e.remove_source("s2").is_err(), "already gone");
    }

    #[test]
    fn feedback_dirties_only_touched_sources() {
        let measure = UdiConfig::default().measure.build();
        let mut e = SetupEngine::new(people_catalog(), UdiConfig::default());
        e.refresh(&*measure).unwrap();
        let n_schemas = e.pmed().len();

        // `address`/`addr` touches s1, s2, s3 minus... s1 and s3 have
        // `address`, s2 has `addr`: all three contain an endpoint here, so
        // judge a pair touching only s2 instead.
        let mut f = Feedback::new();
        f.confirm_different("phone-no", "addr");
        e.apply_feedback(&f);
        e.refresh(&*measure).unwrap();
        let stats = e.report().cache;
        // Only s2 contains phone-no/addr → at most one source recomputed
        // (times the current schema count), unless the judgment changed
        // the schema list itself.
        if !stats.schemas_reenumerated {
            assert_eq!(stats.rows_computed, e.pmed().len());
        }
        let _ = n_schemas;
    }

    #[test]
    fn refresh_on_empty_catalog_is_rejected() {
        let mut e = SetupEngine::new(Catalog::new(), UdiConfig::default());
        let measure = UdiConfig::default().measure.build();
        assert!(matches!(e.refresh(&*measure), Err(UdiError::EmptyCatalog)));
    }
}

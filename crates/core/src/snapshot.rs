//! Atomic snapshot publication for serving layers.
//!
//! A query server wants two properties the bare [`UdiSystem`] cannot give
//! it at once: readers must never block on a refresh (setup can take
//! seconds at scale), and every reader must see a *consistent* system —
//! never a catalog from one generation with p-mappings from another.
//!
//! [`SystemHandle`] provides both with the clone-mutate-publish pattern:
//! the current system lives behind an `Arc` in a slot; readers
//! [`load`](SystemHandle::load) the `Arc` (one brief lock to clone the
//! pointer, never held across any query work) and keep answering against
//! that immutable snapshot for as long as they like. A writer clones the
//! snapshot, mutates the clone off to the side — the expensive part,
//! running with **no** lock held — and [`publish`](SystemHandle::publish)es
//! it by swapping the slot pointer. In-flight readers keep their old
//! snapshot until they drop it; new loads see the new one. A snapshot is
//! freed when the last reader drops it.
//!
//! The workspace forbids `unsafe`, so the slot is a `Mutex<Arc<_>>` rather
//! than an atomic pointer; the critical section is a pointer clone or a
//! pointer store, a few nanoseconds, so the mutex is never a contention
//! point in practice.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::system::UdiSystem;

/// A shared, atomically swappable handle to the current [`UdiSystem`]
/// snapshot. Cheap to clone; all clones observe the same slot.
#[derive(Debug, Clone)]
pub struct SystemHandle {
    slot: Arc<Mutex<Arc<UdiSystem>>>,
}

impl SystemHandle {
    /// Wrap `system` as the initial snapshot.
    pub fn new(system: UdiSystem) -> SystemHandle {
        SystemHandle {
            slot: Arc::new(Mutex::new(Arc::new(system))),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Arc<UdiSystem>> {
        // The slot holds a plain pointer; a poisoned lock means a holder
        // panicked between load and store of an always-valid Arc, so the
        // value is intact — recover instead of propagating the poison.
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current snapshot. The internal lock is held only for the
    /// pointer clone; the returned `Arc` is the caller's to keep — answer
    /// any number of queries against it without ever touching the slot
    /// again.
    pub fn load(&self) -> Arc<UdiSystem> {
        self.lock().clone()
    }

    /// Atomically replace the current snapshot with `next`, returning the
    /// published snapshot's engine generation. In-flight readers keep
    /// serving the snapshot they loaded; only subsequent
    /// [`load`](SystemHandle::load)s observe `next`.
    pub fn publish(&self, next: UdiSystem) -> u64 {
        let generation = next.engine().generation();
        *self.lock() = Arc::new(next);
        generation
    }

    /// Engine generation of the currently published snapshot.
    pub fn generation(&self) -> u64 {
        self.lock().engine().generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::UdiConfig;
    use udi_store::{Catalog, Table};

    fn system() -> UdiSystem {
        let mut catalog = Catalog::new();
        for (name, attrs, row) in [
            ("s1", vec!["name", "phone"], vec!["Alice", "123"]),
            ("s2", vec!["name", "phone-no"], vec!["Bob", "456"]),
            ("s3", vec!["name", "phone"], vec!["Carol", "789"]),
        ] {
            let mut t = Table::new(name, attrs);
            t.push_raw_row(row).unwrap();
            catalog.add_source(t).unwrap();
        }
        UdiSystem::setup(catalog, UdiConfig::default()).unwrap()
    }

    #[test]
    fn load_and_publish_swap_generations() {
        let handle = SystemHandle::new(system());
        let g0 = handle.generation();
        let held = handle.load();

        // Build the successor off to the side from a clone.
        let mut next = (*handle.load()).clone();
        let mut t = Table::new("s4", ["name", "phone"]);
        t.push_raw_row(["Dave", "000"]).unwrap();
        next.add_source(t).unwrap();
        let g1 = handle.publish(next);

        assert!(g1 > g0, "mutations move the generation");
        assert_eq!(handle.generation(), g1);
        // The pre-publish reader still holds the old, consistent snapshot.
        assert_eq!(held.engine().generation(), g0);
        assert_eq!(held.catalog().source_count(), 3);
        assert_eq!(handle.load().catalog().source_count(), 4);
    }

    #[test]
    fn clones_share_the_slot() {
        let handle = SystemHandle::new(system());
        let other = handle.clone();
        let mut next = (*handle.load()).clone();
        let mut t = Table::new("s4", ["name", "phone"]);
        t.push_raw_row(["Dave", "000"]).unwrap();
        next.add_source(t).unwrap();
        handle.publish(next);
        assert_eq!(other.load().catalog().source_count(), 4);
    }
}

//! Query answering: by-table semantics over the consolidated schema and —
//! for Theorem 6.2 — directly over the p-med-schema (Definition 3.3).
//!
//! Every path now answers through the prepared-query layer
//! ([`crate::prepared`]): the per-source signature pooling is compiled
//! once into a [`PreparedQuery`], cached keyed by `(path, query text)`,
//! and invalidated by the engine generation; execution fans sources across
//! `config.threads` workers and merges in catalog order, so answers are
//! byte-identical to the historical sequential path.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use udi_query::{execute_with_binding, AnswerSet, Binding, Query, SourceAccumulator};
use udi_schema::{AttrId, Mapping, MediatedSchema};

use crate::prepared::{
    fan_out, fan_out_parallel, PlanPath, PreparedQuery, QueryPlan, SourceBindings,
};
use crate::system::UdiSystem;

impl UdiSystem {
    /// Answer `query` against the **consolidated** mediated schema with the
    /// consolidated p-mappings (the production path). Query attributes may
    /// be any source attribute covered by the mediated schema; a query
    /// referencing an unknown or unclustered (infrequent) attribute yields
    /// no answers from this path.
    ///
    /// The compiled plan is cached (see [`UdiSystem::prepare`]); repeated
    /// calls with the same query skip straight to execution.
    pub fn answer(&self, query: &Query) -> AnswerSet {
        self.answer_traced(query, 0)
    }

    /// [`answer`](UdiSystem::answer) with the `query.answer` span parented
    /// on `parent` — for serving layers that hold a per-request span open
    /// on another thread and want the whole query trace (down to the
    /// per-source `query.source` spans) hanging off it. `parent == 0`
    /// opens a root span, identical to [`answer`](UdiSystem::answer).
    pub fn answer_traced(&self, query: &Query, parent: u64) -> AnswerSet {
        let mut span = self
            .engine()
            .recorder()
            .span_with_parent("query.answer", parent);
        span.field("path", "consolidated");
        let attrs = query.referenced_attributes();
        let prepared = self.plan_for(PlanPath::Consolidated, &query.to_string(), || {
            self.compile_consolidated(&attrs)
        });
        let Some(plan) = prepared.plan() else {
            return AnswerSet::new();
        };
        let (set, scanned, produced) = execute_select(self, plan, query, span.id());
        span.count("query.tuples.scanned", scanned);
        span.count("query.answers.produced", produced);
        set
    }

    /// [`answer`](UdiSystem::answer) with per-source execution fanned out
    /// across [`set_threads`](UdiSystem::set_threads) scoped workers.
    /// Answers are byte-identical to [`answer`](UdiSystem::answer) at any
    /// thread count; the only difference is wall-clock. Kept as a separate
    /// entry point so the plain `answer*` family stays spawn-free — the
    /// `hot-path-cert` audit pass certifies those paths, and a serving
    /// loop that wants parallelism opts in here explicitly.
    pub fn answer_parallel(&self, query: &Query) -> AnswerSet {
        self.answer_parallel_traced(query, 0)
    }

    /// [`answer_parallel`](UdiSystem::answer_parallel) with an explicit
    /// span parent (see [`answer_traced`](UdiSystem::answer_traced)).
    pub fn answer_parallel_traced(&self, query: &Query, parent: u64) -> AnswerSet {
        let mut span = self
            .engine()
            .recorder()
            .span_with_parent("query.answer", parent);
        span.field("path", "consolidated-parallel");
        let attrs = query.referenced_attributes();
        let prepared = self.plan_for(PlanPath::Consolidated, &query.to_string(), || {
            self.compile_consolidated(&attrs)
        });
        let Some(plan) = prepared.plan() else {
            return AnswerSet::new();
        };
        let (set, scanned, produced) =
            fan_out_parallel(self, plan, span.id(), |table, bindings| {
                let mut acc = SourceAccumulator::new();
                let mut scanned = 0u64;
                for (binding, p) in bindings {
                    scanned += table.row_count() as u64;
                    let rows = execute_with_binding(table, query, binding);
                    acc.add_mapping(&rows, *p);
                }
                (acc.finish(), scanned)
            });
        span.count("query.tuples.scanned", scanned);
        span.count("query.answers.produced", produced);
        set
    }

    /// Compile `query` for the production (consolidated) path and return
    /// the cached plan handle. `answer` and friends do this implicitly; an
    /// explicit `prepare` lets a serving loop warm the cache up front and
    /// inspect whether the query is answerable at all.
    ///
    /// The plan is valid for the engine generation it was compiled under;
    /// after any mutation (`add_source`, `remove_source`, `apply_feedback`)
    /// the next answer recompiles automatically.
    pub fn prepare(&self, query: &Query) -> Arc<PreparedQuery> {
        let attrs = query.referenced_attributes();
        self.plan_for(PlanPath::Consolidated, &query.to_string(), || {
            self.compile_consolidated(&attrs)
        })
    }

    /// Answer `query` directly against the p-med-schema (Definition 3.3):
    /// per possible mediated schema `M_i`, per mapping, weighted by
    /// `Pr(M_i)`. Exists to make Theorem 6.2 executable — `answer` must
    /// return exactly the same answers.
    pub fn answer_with_pmed(&self, query: &Query) -> AnswerSet {
        self.answer_with_pmed_traced(query, 0)
    }

    /// [`answer_with_pmed`](UdiSystem::answer_with_pmed) with an explicit
    /// span parent (see [`answer_traced`](UdiSystem::answer_traced)).
    pub fn answer_with_pmed_traced(&self, query: &Query, parent: u64) -> AnswerSet {
        let mut span = self
            .engine()
            .recorder()
            .span_with_parent("query.answer", parent);
        span.field("path", "pmed");
        let attrs = query.referenced_attributes();
        let prepared = self.plan_for(PlanPath::Pmed, &query.to_string(), || {
            self.compile_pmed(&attrs)
        });
        let Some(plan) = prepared.plan() else {
            return AnswerSet::new();
        };
        let (set, scanned, produced) = execute_select(self, plan, query, span.id());
        span.count("query.tuples.scanned", scanned);
        span.count("query.answers.produced", produced);
        set
    }

    /// Answer `query` using **only** the single highest-probability mapping
    /// of each source's consolidated p-mapping, taken as certain — the
    /// `TopMapping` baseline of §7.3. Compared with [`UdiSystem::answer`],
    /// this loses the probability mass of every alternative mapping (low
    /// recall) and bets everything on the top mapping being right (erratic
    /// precision), which is exactly the behaviour the paper reports.
    pub fn answer_top_mapping(&self, query: &Query) -> AnswerSet {
        self.answer_top_mapping_traced(query, 0)
    }

    /// [`answer_top_mapping`](UdiSystem::answer_top_mapping) with an
    /// explicit span parent (see [`answer_traced`](UdiSystem::answer_traced)).
    pub fn answer_top_mapping_traced(&self, query: &Query, parent: u64) -> AnswerSet {
        let mut span = self
            .engine()
            .recorder()
            .span_with_parent("query.answer", parent);
        span.field("path", "top-mapping");
        let attrs = query.referenced_attributes();
        let prepared = self.plan_for(PlanPath::TopMapping, &query.to_string(), || {
            self.compile_top_mapping(&attrs)
        });
        let Some(plan) = prepared.plan() else {
            return AnswerSet::new();
        };
        let (set, scanned, produced) = execute_select(self, plan, query, span.id());
        span.count("query.tuples.scanned", scanned);
        span.count("query.answers.produced", produced);
        set
    }

    /// Answer `query` under **by-tuple** semantics (an extension; the
    /// paper evaluates by-table). Where by-table assumes one mapping is
    /// correct for a whole source table, by-tuple lets every *source row*
    /// select its own mapping independently (Dong, Halevy & Yu's second
    /// semantics for uncertain mappings). A tuple's probability from one
    /// source is `1 − Π_r (1 − p_r(t))` over the rows `r` that can produce
    /// it, where `p_r(t)` sums the probabilities of the mappings under
    /// which row `r` yields `t`.
    ///
    /// The two semantics agree whenever each answer tuple is producible by
    /// at most one row of each source; they diverge when distinct rows
    /// yield the same tuple under different mappings (by-table adds the
    /// mapping probabilities; by-tuple combines them as independent
    /// events).
    pub fn answer_by_tuple(&self, query: &Query) -> AnswerSet {
        self.answer_by_tuple_traced(query, 0)
    }

    /// [`answer_by_tuple`](UdiSystem::answer_by_tuple) with an explicit
    /// span parent (see [`answer_traced`](UdiSystem::answer_traced)).
    pub fn answer_by_tuple_traced(&self, query: &Query, parent: u64) -> AnswerSet {
        let mut span = self
            .engine()
            .recorder()
            .span_with_parent("query.answer", parent);
        span.field("path", "by-tuple");
        let attrs = query.referenced_attributes();
        // Same pooling as the consolidated path — only execution differs —
        // so the plan is shared with `answer` (same cache key).
        let prepared = self.plan_for(PlanPath::Consolidated, &query.to_string(), || {
            self.compile_consolidated(&attrs)
        });
        let Some(plan) = prepared.plan() else {
            return AnswerSet::new();
        };
        let (set, scanned, produced) = fan_out(self, plan, span.id(), |table, bindings| {
            // Per (row, tuple): total probability of mappings producing it.
            // `Row` has no `Ord`, so this stays a hash map; emission order
            // is governed by the insertion-order `order` vec, never by map
            // iteration.
            // udi-audit: allow(deterministic-iteration, "keyed by Row (no Ord); read by key only, ordered via the `order` vec")
            let mut per_row: HashMap<(usize, udi_store::Row), f64> = HashMap::new();
            let mut order: Vec<(usize, udi_store::Row)> = Vec::new();
            let mut scanned = 0u64;
            for (binding, p) in bindings {
                scanned += table.row_count() as u64;
                for (ri, tuple) in udi_query::execute_with_binding_indexed(table, query, binding) {
                    let key = (ri, tuple);
                    match per_row.get_mut(&key) {
                        Some(q) => *q += p,
                        None => {
                            per_row.insert(key.clone(), *p);
                            order.push(key);
                        }
                    }
                }
            }
            // Combine rows producing the same tuple as independent events.
            // udi-audit: allow(deterministic-iteration, "keyed by Row (no Ord); read by key only, ordered via `tuple_order`")
            let mut combined: HashMap<udi_store::Row, f64> = HashMap::new();
            let mut tuple_order: Vec<udi_store::Row> = Vec::new();
            for key in &order {
                let p_r = per_row.get(key).copied().unwrap_or(0.0).min(1.0);
                match combined.get_mut(&key.1) {
                    Some(acc) => *acc = 1.0 - (1.0 - *acc) * (1.0 - p_r),
                    None => {
                        combined.insert(key.1.clone(), p_r);
                        tuple_order.push(key.1.clone());
                    }
                }
            }
            let tuples: Vec<udi_query::AnswerTuple> = tuple_order
                .into_iter()
                .map(|values| {
                    let probability = combined.get(&values).copied().unwrap_or(0.0);
                    udi_query::AnswerTuple {
                        values,
                        probability,
                    }
                })
                .collect();
            (tuples, scanned)
        });
        span.count("query.tuples.scanned", scanned);
        span.count("query.answers.produced", produced);
        set
    }

    /// Answer a grouped aggregate query (an extension — the paper's
    /// workload is select–project only). By-table semantics carry over
    /// naturally: the aggregate is evaluated per source under each pooled
    /// mapping binding, the group rows inherit the binding's probability,
    /// and identical group rows combine across mappings and sources like
    /// ordinary answers. There is no cross-source fusion of aggregates
    /// (that would need entity resolution; the paper's union model treats
    /// sources independently).
    pub fn answer_aggregate(&self, query: &udi_query::AggregateQuery) -> AnswerSet {
        self.answer_aggregate_traced(query, 0)
    }

    /// [`answer_aggregate`](UdiSystem::answer_aggregate) with an explicit
    /// span parent (see [`answer_traced`](UdiSystem::answer_traced)).
    pub fn answer_aggregate_traced(
        &self,
        query: &udi_query::AggregateQuery,
        parent: u64,
    ) -> AnswerSet {
        let mut span = self
            .engine()
            .recorder()
            .span_with_parent("query.answer", parent);
        span.field("path", "aggregate");
        let attrs = query.referenced_attributes();
        // Aggregates pool exactly like the consolidated select path; the
        // rendered aggregate text (with COUNT/GROUP BY) keys the plan, so
        // it cannot collide with a select over the same attributes.
        let prepared = self.plan_for(PlanPath::Consolidated, &query.to_string(), || {
            self.compile_consolidated(&attrs)
        });
        let Some(plan) = prepared.plan() else {
            return AnswerSet::new();
        };
        let (set, scanned, produced) = fan_out(self, plan, span.id(), |table, bindings| {
            let mut acc = SourceAccumulator::new();
            let mut scanned = 0u64;
            for (binding, p) in bindings {
                scanned += table.row_count() as u64;
                let rows = udi_query::execute_aggregate_with_binding(table, query, binding);
                acc.add_mapping(&rows, *p);
            }
            (acc.finish(), scanned)
        });
        span.count("query.tuples.scanned", scanned);
        span.count("query.answers.produced", produced);
        set
    }

    /// Explain how `query` would be answered: per source, the distinct
    /// attribute bindings induced by the consolidated p-mapping, their
    /// pooled probabilities, and how many rows each contributes. This is
    /// the inspection surface for pay-as-you-go improvement — it shows an
    /// administrator exactly where probability mass goes before they
    /// correct anything.
    pub fn explain(&self, query: &Query) -> Explanation {
        let Some(clusters) = self.resolve_clusters(query, self.consolidated()) else {
            return Explanation {
                query: query.to_string(),
                sources: Vec::new(),
            };
        };
        let attrs = query.referenced_attributes();
        let mut sources = Vec::new();
        for (sid, table) in self.catalog().iter_sources() {
            let pm = self.consolidated_pmapping(sid.0 as usize);
            let mut pooled: BTreeMap<Vec<Option<AttrId>>, f64> = BTreeMap::new();
            for (m, p) in pm.mappings() {
                let sig = binding_signature(m, &clusters);
                *pooled.entry(sig).or_insert(0.0) += p;
            }
            let mut bindings = Vec::new();
            let mut unmapped = 0.0;
            // Ranked for display: most probable binding first, signature
            // order breaking ties.
            let mut entries: Vec<(&Vec<Option<AttrId>>, &f64)> = pooled.iter().collect();
            entries.sort_by(|a, b| {
                b.1.partial_cmp(a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(b.0))
            });
            for (sig, &p) in entries {
                if p <= 0.0 {
                    continue;
                }
                if sig.iter().any(Option::is_none) {
                    unmapped += p;
                    continue;
                }
                let mut binding = Binding::new();
                let pairs: Vec<(String, String)> = attrs
                    .iter()
                    .zip(sig.iter())
                    .filter_map(|(a, id)| {
                        let name = self.schema_set().vocab().name((*id)?).to_owned();
                        binding.bind(*a, name.clone());
                        Some(((*a).to_owned(), name))
                    })
                    .collect();
                let n_rows = execute_with_binding(table, query, &binding).len();
                bindings.push(BindingExplanation {
                    probability: p,
                    pairs,
                    n_rows,
                });
            }
            if !bindings.is_empty() || unmapped < 1.0 - 1e-12 {
                sources.push(SourceExplanation {
                    source: sid,
                    source_name: table.name().to_owned(),
                    bindings,
                    unmapped_probability: unmapped,
                });
            }
        }
        Explanation {
            query: query.to_string(),
            sources,
        }
    }

    /// Map each referenced query attribute to its cluster index in `med`.
    /// `None` when some attribute is unknown or unclustered.
    fn resolve_clusters(
        &self,
        query: &Query,
        med: &MediatedSchema,
    ) -> Option<Vec<(String, usize)>> {
        self.resolve_attr_clusters(&query.referenced_attributes(), med)
    }

    /// [`resolve_clusters`](UdiSystem::resolve_clusters) over a bare
    /// attribute list — shared by select and aggregate compilation.
    fn resolve_attr_clusters(
        &self,
        attrs: &[&str],
        med: &MediatedSchema,
    ) -> Option<Vec<(String, usize)>> {
        attrs
            .iter()
            .map(|a| {
                let id = self.schema_set().vocab().id_of(a)?;
                let cluster = med.cluster_of(id)?;
                Some(((*a).to_owned(), cluster))
            })
            .collect()
    }

    /// Cache lookup for `(path, text)` at the engine's current generation,
    /// compiling on miss. All answer paths funnel through here.
    fn plan_for(
        &self,
        path: PlanPath,
        text: &str,
        compile: impl FnOnce() -> Option<QueryPlan>,
    ) -> Arc<PreparedQuery> {
        self.plans().get_or_compile(
            path,
            text,
            self.engine().generation(),
            self.engine().recorder(),
            compile,
        )
    }

    /// Lower one source's pooled signature map into execution-ready
    /// bindings: drop zero-mass and incomplete signatures, resolve ids to
    /// source attribute names. Iterates the `BTreeMap` in key order, so the
    /// binding list preserves exactly the order the sequential path used.
    fn pooled_to_bindings(
        &self,
        attrs: &[&str],
        pooled: BTreeMap<Vec<Option<AttrId>>, f64>,
    ) -> SourceBindings {
        let mut out = Vec::with_capacity(pooled.len());
        for (sig, p) in pooled {
            if p <= 0.0 || sig.iter().any(Option::is_none) {
                continue;
            }
            let mut binding = Binding::new();
            for (a, id) in attrs.iter().zip(sig.iter()) {
                let Some(id) = *id else { continue };
                binding.bind(*a, self.schema_set().vocab().name(id));
            }
            out.push((binding, p));
        }
        out
    }

    /// Compile for the consolidated path: one pooled signature map per
    /// source from its consolidated p-mapping.
    fn compile_consolidated(&self, attrs: &[&str]) -> Option<QueryPlan> {
        let clusters = self.resolve_attr_clusters(attrs, self.consolidated())?;
        let per_source = self
            .catalog()
            .iter_sources()
            .map(|(sid, _)| {
                let pm = self.consolidated_pmapping(sid.0 as usize);
                let mut pooled: BTreeMap<Vec<Option<AttrId>>, f64> = BTreeMap::new();
                for (m, p) in pm.mappings() {
                    *pooled.entry(binding_signature(m, &clusters)).or_insert(0.0) += p;
                }
                self.pooled_to_bindings(attrs, pooled)
            })
            .collect();
        Some(QueryPlan { per_source })
    }

    /// Compile for the p-med-schema path: pool across every possible
    /// schema, weighting each mapping by its schema's probability. A schema
    /// that cannot resolve the query contributes nothing; if none can, the
    /// query is unanswerable.
    fn compile_pmed(&self, attrs: &[&str]) -> Option<QueryPlan> {
        let resolved: Vec<Option<Vec<(String, usize)>>> = self
            .pmed()
            .schemas()
            .iter()
            .map(|(m, _)| self.resolve_attr_clusters(attrs, m))
            .collect();
        if resolved.iter().all(Option::is_none) {
            return None;
        }
        let per_source = self
            .catalog()
            .iter_sources()
            .map(|(sid, _)| {
                let mut pooled: BTreeMap<Vec<Option<AttrId>>, f64> = BTreeMap::new();
                for (i, (_, p_schema)) in self.pmed().schemas().iter().enumerate() {
                    let Some(clusters) = resolved.get(i).and_then(Option::as_ref) else {
                        continue;
                    };
                    for (m, p) in self.pmapping(sid.0 as usize, i).mappings() {
                        *pooled.entry(binding_signature(m, clusters)).or_insert(0.0) +=
                            p * p_schema;
                    }
                }
                self.pooled_to_bindings(attrs, pooled)
            })
            .collect();
        Some(QueryPlan { per_source })
    }

    /// Compile for the top-mapping baseline: each source's single most
    /// probable mapping, taken as certain.
    fn compile_top_mapping(&self, attrs: &[&str]) -> Option<QueryPlan> {
        let clusters = self.resolve_attr_clusters(attrs, self.consolidated())?;
        let per_source = self
            .catalog()
            .iter_sources()
            .map(|(sid, _)| {
                let pm = self.consolidated_pmapping(sid.0 as usize);
                let mut pooled: BTreeMap<Vec<Option<AttrId>>, f64> = BTreeMap::new();
                pooled.insert(binding_signature(pm.top_mapping(), &clusters), 1.0);
                self.pooled_to_bindings(attrs, pooled)
            })
            .collect();
        Some(QueryPlan { per_source })
    }
}

/// Execute a select plan: per source, run the query once per pooled
/// binding and accumulate by-table probabilities — sequentially, via
/// [`fan_out`], so the certified answer paths stay spawn-free
/// ([`UdiSystem::answer_parallel`] is the opt-in threaded variant).
fn execute_select(
    sys: &UdiSystem,
    plan: &QueryPlan,
    query: &Query,
    parent: u64,
) -> (AnswerSet, u64, u64) {
    fan_out(sys, plan, parent, |table, bindings| {
        let mut acc = SourceAccumulator::new();
        let mut scanned = 0u64;
        for (binding, p) in bindings {
            scanned += table.row_count() as u64;
            let rows = execute_with_binding(table, query, binding);
            acc.add_mapping(&rows, *p);
        }
        (acc.finish(), scanned)
    })
}

/// How one source would answer a query (see [`UdiSystem::explain`]).
#[derive(Debug, Clone)]
pub struct SourceExplanation {
    /// Which source.
    pub source: udi_store::SourceId,
    /// Its table name.
    pub source_name: String,
    /// Complete bindings, most probable first.
    pub bindings: Vec<BindingExplanation>,
    /// Probability mass of mappings that leave some query attribute
    /// unbound (the source then contributes nothing under them).
    pub unmapped_probability: f64,
}

/// One concrete attribute binding a source can answer under.
#[derive(Debug, Clone)]
pub struct BindingExplanation {
    /// Pooled probability of the mappings inducing this binding.
    pub probability: f64,
    /// `(query attribute, source attribute)` pairs.
    pub pairs: Vec<(String, String)>,
    /// Number of rows the rewritten query returns under this binding.
    pub n_rows: usize,
}

/// A full query explanation.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The query being explained (rendered).
    pub query: String,
    /// Per-source breakdowns; sources that cannot contribute at all are
    /// omitted.
    pub sources: Vec<SourceExplanation>,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.query)?;
        for s in &self.sources {
            writeln!(f, "  {} ({}):", s.source, s.source_name)?;
            for b in &s.bindings {
                let pairs: Vec<String> = b.pairs.iter().map(|(q, a)| format!("{q}→{a}")).collect();
                writeln!(
                    f,
                    "    p={:.3}  [{}]  {} rows",
                    b.probability,
                    pairs.join(", "),
                    b.n_rows
                )?;
            }
            if s.unmapped_probability > 1e-12 {
                writeln!(
                    f,
                    "    p={:.3}  (no complete binding)",
                    s.unmapped_probability
                )?;
            }
        }
        Ok(())
    }
}

/// The binding a mapping induces on the query's clusters: for each
/// `(query attr, cluster)`, the unique source attribute mapped to that
/// cluster, if any. Mappings inducing the same signature are
/// probability-pooled before execution (they are indistinguishable to the
/// query), which keeps answering fast even when p-mappings are large.
fn binding_signature(m: &Mapping, clusters: &[(String, usize)]) -> Vec<Option<AttrId>> {
    clusters.iter().map(|&(_, j)| m.source_of(j)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::UdiConfig;
    use udi_query::parse_query;
    use udi_schema::{PMapping, PMedSchema};
    use udi_store::{Catalog, Table, Value};

    /// Catalog with a single source: Example 2.1's S1 and its tuple.
    fn example_2_1() -> UdiSystem {
        let mut catalog = Catalog::new();
        let mut s1 = Table::new("S1", ["name", "hPhone", "hAddr", "oPhone", "oAddr"]);
        s1.push_raw_row([
            "Alice",
            "123-4567",
            "123, A Ave.",
            "765-4321",
            "456, B Ave.",
        ])
        .unwrap();
        // A second schema-only source so that `phone`/`address` exist in
        // the vocabulary (S2 of the example; its data is irrelevant here).
        let s2 = Table::new("S2", ["name", "phone", "address"]);
        catalog.add_source(s1).unwrap();
        catalog.add_source(s2).unwrap();

        // Hand-build the p-med-schema M = {M3: 0.5, M4: 0.5} of Example 2.1.
        // Vocabulary ids follow catalog order: name=0, hPhone=1, hAddr=2,
        // oPhone=3, oAddr=4, phone=5, address=6.
        let (name, h_p, h_a, o_p, o_a, phone, addr) = (
            AttrId(0),
            AttrId(1),
            AttrId(2),
            AttrId(3),
            AttrId(4),
            AttrId(5),
            AttrId(6),
        );
        let m3 = udi_schema::MediatedSchema::from_slices(&[
            &[name],
            &[phone, h_p],
            &[o_p],
            &[addr, h_a],
            &[o_a],
        ]);
        let m4 = udi_schema::MediatedSchema::from_slices(&[
            &[name],
            &[phone, o_p],
            &[h_p],
            &[addr, o_a],
            &[h_a],
        ]);
        let pmed = PMedSchema::new(vec![(m3.clone(), 0.5), (m4.clone(), 0.5)]);

        // Figure 1(a): pM between S1 and M3 (cluster indices per schema).
        let c3 = |a: AttrId| m3.cluster_of(a).unwrap();
        let pm_s1_m3 = PMapping::new(vec![
            (
                Mapping::one_to_one([
                    (name, c3(name)),
                    (h_p, c3(phone)),
                    (o_p, c3(o_p)),
                    (h_a, c3(addr)),
                    (o_a, c3(o_a)),
                ]),
                0.64,
            ),
            (
                Mapping::one_to_one([
                    (name, c3(name)),
                    (h_p, c3(phone)),
                    (o_p, c3(o_p)),
                    (o_a, c3(addr)),
                    (h_a, c3(o_a)),
                ]),
                0.16,
            ),
            (
                Mapping::one_to_one([
                    (name, c3(name)),
                    (o_p, c3(phone)),
                    (h_p, c3(o_p)),
                    (h_a, c3(addr)),
                    (o_a, c3(o_a)),
                ]),
                0.16,
            ),
            (
                Mapping::one_to_one([
                    (name, c3(name)),
                    (o_p, c3(phone)),
                    (h_p, c3(o_p)),
                    (o_a, c3(addr)),
                    (h_a, c3(o_a)),
                ]),
                0.04,
            ),
        ]);
        // Figure 1(b): pM between S1 and M4, mirror image.
        let c4 = |a: AttrId| m4.cluster_of(a).unwrap();
        let pm_s1_m4 = PMapping::new(vec![
            (
                Mapping::one_to_one([
                    (name, c4(name)),
                    (o_p, c4(phone)),
                    (h_p, c4(h_p)),
                    (o_a, c4(addr)),
                    (h_a, c4(h_a)),
                ]),
                0.64,
            ),
            (
                Mapping::one_to_one([
                    (name, c4(name)),
                    (o_p, c4(phone)),
                    (h_p, c4(h_p)),
                    (h_a, c4(addr)),
                    (o_a, c4(h_a)),
                ]),
                0.16,
            ),
            (
                Mapping::one_to_one([
                    (name, c4(name)),
                    (h_p, c4(phone)),
                    (o_p, c4(h_p)),
                    (o_a, c4(addr)),
                    (h_a, c4(h_a)),
                ]),
                0.16,
            ),
            (
                Mapping::one_to_one([
                    (name, c4(name)),
                    (h_p, c4(phone)),
                    (o_p, c4(h_p)),
                    (h_a, c4(addr)),
                    (o_a, c4(h_a)),
                ]),
                0.04,
            ),
        ]);
        // S2 maps identically under both schemas.
        let id_mapping = |med: &udi_schema::MediatedSchema| {
            Mapping::one_to_one([
                (name, med.cluster_of(name).unwrap()),
                (phone, med.cluster_of(phone).unwrap()),
                (addr, med.cluster_of(addr).unwrap()),
            ])
        };
        let pm_s2_m3 = PMapping::new(vec![(id_mapping(&m3), 1.0)]);
        let pm_s2_m4 = PMapping::new(vec![(id_mapping(&m4), 1.0)]);

        UdiSystem::from_parts(
            catalog,
            pmed,
            vec![vec![pm_s1_m3, pm_s1_m4], vec![pm_s2_m3, pm_s2_m4]],
        )
        .unwrap()
    }

    /// Figure 1(c): the four answers with probabilities .34/.34/.16/.16.
    #[test]
    fn example_2_1_reproduces_figure_1c() {
        let udi = example_2_1();
        let q = parse_query("SELECT name, phone, address FROM People").unwrap();
        let answers = udi.answer(&q).combined();
        assert_eq!(answers.len(), 4);
        let find = |phone: &str, addr: &str| -> f64 {
            answers
                .iter()
                .find(|t| t.values[1] == Value::text(phone) && t.values[2] == Value::text(addr))
                .map(|t| t.probability)
                .unwrap_or(0.0)
        };
        // Correct correlations: home-home and office-office get 0.34 each.
        assert!((find("123-4567", "123, A Ave.") - 0.34).abs() < 1e-9);
        assert!((find("765-4321", "456, B Ave.") - 0.34).abs() < 1e-9);
        // Cross pairings get 0.16.
        assert!((find("765-4321", "123, A Ave.") - 0.16).abs() < 1e-9);
        assert!((find("123-4567", "456, B Ave.") - 0.16).abs() < 1e-9);
    }

    /// Theorem 6.2 on the worked example: the consolidated path and the
    /// p-med-schema path agree on every query.
    #[test]
    fn consolidation_preserves_answers_on_example() {
        let udi = example_2_1();
        for sql in [
            "SELECT name, phone, address FROM P",
            "SELECT phone FROM P",
            "SELECT name, hPhone FROM P",
            "SELECT name FROM P WHERE phone = '123-4567'",
            "SELECT address FROM P WHERE name LIKE 'A%'",
            "SELECT oPhone, hAddr FROM P",
        ] {
            let q = parse_query(sql).unwrap();
            let a = udi.answer(&q).combined();
            let b = udi.answer_with_pmed(&q).combined();
            assert_eq!(a.len(), b.len(), "{sql}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.values, y.values, "{sql}");
                assert!((x.probability - y.probability).abs() < 1e-9, "{sql}");
            }
        }
    }

    #[test]
    fn unknown_attribute_yields_empty() {
        let udi = example_2_1();
        let q = parse_query("SELECT salary FROM P").unwrap();
        assert!(udi.answer(&q).is_empty());
        assert!(udi.answer_with_pmed(&q).is_empty());
    }

    #[test]
    fn predicates_filter_through_mappings() {
        let udi = example_2_1();
        let q = parse_query("SELECT name FROM P WHERE phone = '765-4321'").unwrap();
        let answers = udi.answer(&q).combined();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].values[0], Value::text("Alice"));
        // Office phone matching `phone` happens with probability
        // .5*(.16+.04) + .5*(.64+.16) = 0.5.
        assert!((answers[0].probability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn aggregate_answering_groups_within_sources() {
        // Three sources with heterogeneous genre labels; aggregate counts
        // per genre must flow through the p-mappings like any query.
        let mut catalog = Catalog::new();
        let mut t1 = Table::new("a", ["genre", "title"]);
        t1.push_raw_row(["Drama", "A"]).unwrap();
        t1.push_raw_row(["Drama", "B"]).unwrap();
        t1.push_raw_row(["Comedy", "C"]).unwrap();
        let mut t2 = Table::new("b", ["genres", "title"]);
        t2.push_raw_row(["Drama", "D"]).unwrap();
        let mut t3 = Table::new("c", ["genre", "title"]);
        t3.push_raw_row(["Comedy", "E"]).unwrap();
        catalog.add_source(t1).unwrap();
        catalog.add_source(t2).unwrap();
        catalog.add_source(t3).unwrap();
        let udi = UdiSystem::setup(catalog, UdiConfig::default()).unwrap();

        let q = udi_query::parse_aggregate_query("SELECT genre, COUNT(*) FROM t GROUP BY genre")
            .unwrap();
        let ans = udi.answer_aggregate(&q);
        // Source a: (Drama,2), (Comedy,1); source b via `genres` cluster:
        // (Drama,1); source c: (Comedy,1).
        let flat = ans.flat();
        let find = |genre: &str, n: i64| {
            flat.iter()
                .any(|t| t.values[0] == Value::text(genre) && t.values[1] == Value::Int(n))
        };
        assert!(find("Drama", 2), "source a groups");
        assert!(find("Comedy", 1));
        assert!(
            find("Drama", 1),
            "source b reached through the genres variant"
        );
        // Combined view merges identical (Comedy, 1) rows from a and c by
        // disjunction.
        let combined = ans.combined();
        let comedy1 = combined
            .iter()
            .find(|t| t.values[0] == Value::text("Comedy") && t.values[1] == Value::Int(1))
            .expect("present");
        assert!(comedy1.probability > 0.9);
    }

    #[test]
    fn aggregate_with_predicate_and_ungrouped() {
        let udi = example_2_1();
        let q = udi_query::parse_aggregate_query("SELECT COUNT(*) FROM p WHERE name = 'Alice'")
            .unwrap();
        let ans = udi.answer_aggregate(&q);
        // S1 contains Alice once; S2 has no rows.
        let flat = ans.flat();
        assert!(flat.iter().any(|t| t.values[0] == Value::Int(1)));
    }

    #[test]
    fn aggregate_over_unknown_attribute_is_empty() {
        let udi = example_2_1();
        let q = udi_query::parse_aggregate_query("SELECT COUNT(salary) FROM p").unwrap();
        assert!(udi.answer_aggregate(&q).is_empty());
    }

    #[test]
    fn by_tuple_agrees_with_by_table_on_single_row_sources() {
        // Every source of the Example 2.1 fixture has at most one row, so
        // no answer tuple can arise from two rows: the semantics coincide.
        let udi = example_2_1();
        for sql in [
            "SELECT name, phone, address FROM P",
            "SELECT phone FROM P",
            "SELECT name FROM P WHERE phone = '123-4567'",
        ] {
            let q = parse_query(sql).unwrap();
            let mut a = udi.answer(&q).combined();
            let mut b = udi.answer_by_tuple(&q).combined();
            a.sort_by(|x, y| x.values.cmp(&y.values));
            b.sort_by(|x, y| x.values.cmp(&y.values));
            assert_eq!(a.len(), b.len(), "{sql}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.values, y.values, "{sql}");
                assert!((x.probability - y.probability).abs() < 1e-9, "{sql}");
            }
        }
    }

    #[test]
    fn by_tuple_diverges_when_rows_overlap() {
        // One source, two rows; the p-mapping has two possible bindings
        // (0.6/0.4). Row 0 yields "x" under binding A, row 1 yields "x"
        // under binding B:
        //   by-table : P(x) = 0.6 + 0.4 = 1.0 (either mapping produces x)
        //   by-tuple : P(x) = 1 − (1−0.6)(1−0.4) = 0.76
        let mut catalog = Catalog::new();
        let mut t = Table::new("S", ["a", "b"]);
        t.push_raw_row(["x", "y"]).unwrap(); // row 0
        t.push_raw_row(["y", "x"]).unwrap(); // row 1
        catalog.add_source(t).unwrap();
        let (a, b) = (AttrId(0), AttrId(1));
        let med = udi_schema::MediatedSchema::from_slices(&[&[a], &[b]]);
        let pmed = PMedSchema::new(vec![(med, 1.0)]);
        // Mapping A: a→{a} (query attr a reads column a); mapping B: b→{a}.
        let pm = PMapping::new(vec![
            (Mapping::one_to_one([(a, 0)]), 0.6),
            (Mapping::one_to_one([(b, 0)]), 0.4),
        ]);
        let udi = UdiSystem::from_parts(catalog, pmed, vec![vec![pm]]).unwrap();
        let q = parse_query("SELECT a FROM S").unwrap();

        let by_table = udi.answer(&q).combined();
        let p_table: f64 = by_table
            .iter()
            .filter(|t| t.values[0] == Value::text("x"))
            .map(|t| t.probability)
            .sum();
        assert!((p_table - 1.0).abs() < 1e-9, "by-table: {p_table}");

        let by_tuple = udi.answer_by_tuple(&q).combined();
        let p_tuple: f64 = by_tuple
            .iter()
            .filter(|t| t.values[0] == Value::text("x"))
            .map(|t| t.probability)
            .sum();
        assert!((p_tuple - 0.76).abs() < 1e-9, "by-tuple: {p_tuple}");
    }

    #[test]
    fn explanation_accounts_for_all_probability_mass() {
        let udi = example_2_1();
        let q = parse_query("SELECT name, phone, address FROM P").unwrap();
        let ex = udi.explain(&q);
        assert!(ex.query.contains("SELECT name, phone, address"));
        assert_eq!(ex.sources.len(), 2);
        for s in &ex.sources {
            let total: f64 =
                s.bindings.iter().map(|b| b.probability).sum::<f64>() + s.unmapped_probability;
            assert!((total - 1.0).abs() < 1e-9, "{}", s.source_name);
            for b in &s.bindings {
                assert_eq!(b.pairs.len(), 3, "one pair per query attribute");
            }
        }
        // S1 has four distinct bindings (Figure 1's four pairings).
        let s1 = &ex.sources[0];
        assert_eq!(s1.bindings.len(), 4);
        // Bindings are ranked by probability.
        for w in s1.bindings.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
        // Display renders without panicking and mentions the source.
        let text = ex.to_string();
        assert!(text.contains("S1"));
        assert!(text.contains("rows"));
    }

    #[test]
    fn explanation_of_unknown_attribute_is_empty() {
        let udi = example_2_1();
        let q = parse_query("SELECT salary FROM P").unwrap();
        assert!(udi.explain(&q).sources.is_empty());
    }

    #[test]
    fn end_to_end_setup_answers_heterogeneous_sources() {
        let mut catalog = Catalog::new();
        let mut t1 = Table::new("a", ["title", "year"]);
        t1.push_raw_row(["Metropolis", "1927"]).unwrap();
        let mut t2 = Table::new("b", ["title", "year(s)"]);
        t2.push_raw_row(["Casablanca", "1942"]).unwrap();
        let mut t3 = Table::new("c", ["title", "year"]);
        t3.push_raw_row(["Vertigo", "1958"]).unwrap();
        catalog.add_source(t1).unwrap();
        catalog.add_source(t2).unwrap();
        catalog.add_source(t3).unwrap();
        let udi = UdiSystem::setup(catalog, UdiConfig::default()).unwrap();
        let q = parse_query("SELECT title FROM movies WHERE year > 1930").unwrap();
        let combined = udi.answer(&q).combined();
        let titles: Vec<String> = combined.iter().map(|t| t.values[0].to_string()).collect();
        assert!(
            titles.contains(&"Casablanca".to_owned()),
            "year(s) matched to year: {titles:?}"
        );
        assert!(titles.contains(&"Vertigo".to_owned()));
        assert!(!titles.contains(&"Metropolis".to_owned()));
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! UDI — the self-configuring, pay-as-you-go data integration system of
//! SIGMOD'08 (§7.1 calls it "UDI").
//!
//! Given a catalog of single-table data sources, [`UdiSystem::setup`] runs
//! the full automatic configuration pipeline with **no human input**:
//!
//! 1. import source schemas and attribute statistics;
//! 2. build the probabilistic mediated schema (Algorithms 1–2);
//! 3. generate a maximum-entropy p-mapping between every source and every
//!    possible mediated schema (§5);
//! 4. consolidate into one deterministic mediated schema with one-to-many
//!    p-mappings (§6) — the schema exposed to users.
//!
//! [`UdiSystem::answer`] then evaluates select–project queries under
//! by-table semantics, ranks answers by probability, and combines sources
//! by probabilistic disjunction. [`UdiSystem::answer_with_pmed`] answers the
//! same query directly against the p-med-schema (Definition 3.3), which
//! makes Theorem 6.2 ("consolidation preserves answers") executable.
//!
//! # Quickstart
//!
//! ```
//! use udi_core::UdiSystem;
//! use udi_query::parse_query;
//! use udi_store::{Catalog, Table};
//!
//! let mut catalog = Catalog::new();
//! for (name, attrs, row) in [
//!     ("s1", vec!["name", "phone"], vec!["Alice", "123-4567"]),
//!     ("s2", vec!["name", "phone-no"], vec!["Bob", "765-4321"]),
//!     ("s3", vec!["name", "phone"], vec!["Carol", "555-0000"]),
//! ] {
//!     let mut t = Table::new(name, attrs);
//!     t.push_raw_row(row).unwrap();
//!     catalog.add_source(t).unwrap();
//! }
//! let udi = UdiSystem::setup(catalog, Default::default()).unwrap();
//! let q = parse_query("SELECT name, phone FROM people").unwrap();
//! let answers = udi.answer(&q).combined();
//! assert_eq!(answers.len(), 3, "phone-no is matched to phone automatically");
//! ```

pub mod answer;
pub mod engine;
pub mod feedback;
pub mod persist;
pub mod pipeline;
pub mod prepared;
pub mod system;

pub use answer::{BindingExplanation, Explanation, SourceExplanation};
pub use engine::SetupEngine;
pub use feedback::{suggest_questions, Feedback, FeedbackMeasure, Question};
pub use persist::PersistError;
pub use pipeline::{CacheStats, MeasureKind, SetupReport, SetupTimings, UdiConfig};
pub use prepared::{PlanPath, PreparedQuery};
pub use system::UdiSystem;

/// Errors surfaced by system setup or query answering.
#[derive(Debug)]
pub enum UdiError {
    /// p-mapping construction failed (state explosion or solver failure).
    MaxEnt(udi_schema::MaxEntError),
    /// Storage-layer failure.
    Store(udi_store::StoreError),
    /// Setup was asked to run over an empty catalog.
    EmptyCatalog,
    /// [`UdiSystem::from_parts`] was given the wrong number of p-mapping
    /// rows (one row per source is required).
    MappingRowMismatch {
        /// Sources in the catalog.
        expected: usize,
        /// Rows supplied.
        got: usize,
    },
    /// [`UdiSystem::from_parts`] was given a row with the wrong number of
    /// p-mappings (one per possible mediated schema is required).
    MappingColumnMismatch {
        /// Index of the offending source row.
        source: usize,
        /// Possible schemas in the p-med-schema.
        expected: usize,
        /// p-mappings supplied in that row.
        got: usize,
    },
    /// A typed id space (source ids, blocking attribute ids) ran out of
    /// `u32` room. Surfaced as an error instead of silently wrapping and
    /// corrupting positional lookups.
    IdSpaceExhausted {
        /// Which id space overflowed (e.g. `"source"`, `"blocking attr"`).
        what: &'static str,
        /// The count that no longer fits.
        count: usize,
    },
    /// An internal invariant of the setup engine was violated — a bug in
    /// UDI itself, not in the caller's input. The payload names the broken
    /// invariant.
    Internal(&'static str),
}

impl std::fmt::Display for UdiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdiError::MaxEnt(e) => write!(f, "p-mapping construction failed: {e}"),
            UdiError::Store(e) => write!(f, "storage error: {e}"),
            UdiError::EmptyCatalog => write!(f, "cannot set up integration over zero sources"),
            UdiError::MappingRowMismatch { expected, got } => write!(
                f,
                "expected one p-mapping row per source ({expected}), got {got}"
            ),
            UdiError::MappingColumnMismatch { source, expected, got } => write!(
                f,
                "source {source}: expected one p-mapping per possible schema ({expected}), got {got}"
            ),
            UdiError::IdSpaceExhausted { what, count } => {
                write!(f, "{what} id space exhausted at {count} entries")
            }
            UdiError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for UdiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UdiError::MaxEnt(e) => Some(e),
            UdiError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<udi_schema::MaxEntError> for UdiError {
    fn from(e: udi_schema::MaxEntError) -> Self {
        UdiError::MaxEnt(e)
    }
}

impl From<udi_store::StoreError> for UdiError {
    fn from(e: udi_store::StoreError) -> Self {
        UdiError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = UdiError::EmptyCatalog;
        assert!(e.to_string().contains("zero sources"));
        assert!(e.source().is_none());
        let e = UdiError::MaxEnt(udi_schema::MaxEntError::Explosion { cap: 5 });
        assert!(e.to_string().contains("cap of 5"));
        assert!(e.source().is_some());
    }
}

//! Persistence of a configured system.
//!
//! A pay-as-you-go deployment sets up once and serves queries for a long
//! time; nobody wants to re-run entropy maximization on every restart. The
//! snapshot keeps exactly the three inputs [`UdiSystem::from_parts`] needs
//! — catalog, p-med-schema, per-(source, schema) p-mappings — and
//! rebuilds everything else (vocabulary, consolidation) on load, so the
//! format cannot drift out of sync with derived state.

use serde::{Deserialize, Serialize};

use udi_schema::{PMapping, PMedSchema};
use udi_store::Catalog;

use crate::feedback::Feedback;
use crate::system::UdiSystem;
use crate::UdiError;

/// Schema version of the snapshot format. Version 2 added the accumulated
/// feedback; version-1 snapshots still load (with empty feedback).
const SNAPSHOT_VERSION: u32 = 2;

#[derive(Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    catalog: Catalog,
    pmed: PMedSchema,
    pmappings: Vec<Vec<PMapping>>,
    /// Absent in version-1 snapshots.
    #[serde(default)]
    feedback: Feedback,
}

/// Errors from snapshot encoding/decoding.
#[derive(Debug)]
pub enum PersistError {
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// The snapshot is from an incompatible format version.
    VersionMismatch {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The decoded parts failed to reassemble.
    Rebuild(UdiError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Json(e) => write!(f, "snapshot JSON error: {e}"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found}, this build reads {expected}")
            }
            PersistError::Rebuild(e) => write!(f, "snapshot could not be reassembled: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl UdiSystem {
    /// Serialize the configured system to a JSON snapshot.
    pub fn to_json(&self) -> Result<String, PersistError> {
        let snapshot = Snapshot {
            version: SNAPSHOT_VERSION,
            catalog: self.catalog().clone(),
            pmed: self.pmed().clone(),
            pmappings: (0..self.catalog().source_count())
                .map(|s| {
                    (0..self.pmed().len())
                        .map(|m| self.pmapping(s, m).clone())
                        .collect()
                })
                .collect(),
            feedback: self.feedback().clone(),
        };
        serde_json::to_string(&snapshot).map_err(PersistError::Json)
    }

    /// Rebuild a system from a JSON snapshot produced by
    /// [`UdiSystem::to_json`]. Consolidation and derived indexes are
    /// recomputed, so Theorem 6.2 equivalence holds for the loaded system
    /// exactly as for the original.
    pub fn from_json(json: &str) -> Result<UdiSystem, PersistError> {
        let snapshot: Snapshot = serde_json::from_str(json).map_err(PersistError::Json)?;
        if !(1..=SNAPSHOT_VERSION).contains(&snapshot.version) {
            return Err(PersistError::VersionMismatch {
                found: snapshot.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let mut system = UdiSystem::from_parts(snapshot.catalog, snapshot.pmed, snapshot.pmappings)
            .map_err(PersistError::Rebuild)?;
        system.restore_feedback(snapshot.feedback);
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::UdiConfig;
    use udi_query::parse_query;
    use udi_store::Table;

    /// False when the JSON backend is the offline stub (see
    /// `offline/README.md`), in which case serialization-dependent tests
    /// skip themselves. Under the real `serde_json` this is always true.
    fn json_available() -> bool {
        serde_json::to_string(&Catalog::new()).is_ok()
    }

    fn system() -> UdiSystem {
        let mut catalog = Catalog::new();
        for (name, attrs, row) in [
            ("s1", vec!["name", "phone"], vec!["Alice", "123"]),
            ("s2", vec!["name", "phone-no"], vec!["Bob", "456"]),
            ("s3", vec!["name", "phone"], vec!["Carol", "789"]),
        ] {
            let mut t = Table::new(name, attrs);
            t.push_raw_row(row).unwrap();
            catalog.add_source(t).unwrap();
        }
        UdiSystem::setup(catalog, UdiConfig::default()).unwrap()
    }

    #[test]
    fn round_trip_preserves_answers() {
        if !json_available() {
            return;
        }
        let original = system();
        let json = original.to_json().unwrap();
        let loaded = UdiSystem::from_json(&json).unwrap();

        assert_eq!(loaded.pmed().len(), original.pmed().len());
        assert_eq!(loaded.consolidated(), original.consolidated());
        for sql in [
            "SELECT name, phone FROM t",
            "SELECT name FROM t WHERE phone = '456'",
        ] {
            let q = parse_query(sql).unwrap();
            let a = original.answer(&q).combined();
            let b = loaded.answer(&q).combined();
            assert_eq!(a.len(), b.len(), "{sql}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.values, y.values, "{sql}");
                assert!((x.probability - y.probability).abs() < 1e-12, "{sql}");
            }
        }
    }

    #[test]
    fn version_gate() {
        if !json_available() {
            return;
        }
        let original = system();
        let json = original.to_json().unwrap();
        let bumped = json.replacen("\"version\":2", "\"version\":99", 1);
        let err = UdiSystem::from_json(&bumped).unwrap_err();
        assert!(matches!(
            err,
            PersistError::VersionMismatch {
                found: 99,
                expected: 2
            }
        ));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn version_1_snapshots_still_load() {
        if !json_available() {
            return;
        }
        let original = system();
        // A v1 snapshot is a v2 snapshot minus the feedback field.
        let v1 = original
            .to_json()
            .unwrap()
            .replacen("\"version\":2", "\"version\":1", 1)
            .replacen(",\"feedback\":{\"same\":[],\"different\":[]}", "", 1);
        let loaded = UdiSystem::from_json(&v1).unwrap();
        assert_eq!(loaded.pmed().len(), original.pmed().len());
        assert!(loaded.feedback().is_empty());
    }

    #[test]
    fn feedback_survives_the_round_trip() {
        if !json_available() {
            return;
        }
        let mut original = system();
        let mut f = crate::Feedback::new();
        f.confirm_same("phone", "phone-no");
        original.apply_feedback(&f).unwrap();
        let loaded = UdiSystem::from_json(&original.to_json().unwrap()).unwrap();
        assert_eq!(loaded.feedback().judgment("phone", "phone-no"), Some(true));
        assert_eq!(loaded.consolidated(), original.consolidated());
    }

    #[test]
    fn garbage_is_rejected() {
        if !json_available() {
            return;
        }
        assert!(matches!(
            UdiSystem::from_json("not json").unwrap_err(),
            PersistError::Json(_)
        ));
        assert!(matches!(
            UdiSystem::from_json("{}").unwrap_err(),
            PersistError::Json(_)
        ));
    }

    #[test]
    fn snapshot_is_self_contained_json() {
        if !json_available() {
            return;
        }
        let json = system().to_json().unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["version"], 2);
        assert!(v["catalog"].is_object());
        assert!(v["pmed"].is_object());
        assert!(v["pmappings"].is_array());
    }
}

//! Pay-as-you-go feedback: fold human confirmations into re-configuration.
//!
//! §9: "the foundation of modeling uncertainty will help pinpoint where
//! human feedback can be most effective in improving the semantic
//! integration in the system, in the spirit of [Jeffery, Franklin &
//! Halevy's pay-as-you-go user feedback]". This module implements that
//! loop:
//!
//! 1. [`suggest_questions`] ranks the schema's *uncertain* decisions — the
//!    attribute pairs whose clustering differs across the possible mediated
//!    schemas — by how much probability mass hinges on them. Those are the
//!    questions worth a human's time.
//! 2. [`Feedback`] records the answers: two names denote the same concept,
//!    or different ones.
//! 3. [`Feedback::wrap`] turns any similarity measure into one that honors
//!    the feedback (confirmed-same → similarity 1, confirmed-different →
//!    0), so re-running setup yields a system whose schemas no longer
//!    branch on answered questions.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use udi_similarity::Similarity;

use crate::system::UdiSystem;

/// Accumulated human judgments about attribute-name pairs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Feedback {
    same: BTreeSet<(String, String)>,
    different: BTreeSet<(String, String)>,
}

fn key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_owned(), b.to_owned())
    } else {
        (b.to_owned(), a.to_owned())
    }
}

impl Feedback {
    /// No feedback yet.
    pub fn new() -> Feedback {
        Feedback::default()
    }

    /// Record that `a` and `b` denote the same concept. Removes any
    /// contrary judgment.
    pub fn confirm_same(&mut self, a: &str, b: &str) -> &mut Feedback {
        let k = key(a, b);
        self.different.remove(&k);
        self.same.insert(k);
        self
    }

    /// Record that `a` and `b` denote different concepts. Removes any
    /// contrary judgment.
    pub fn confirm_different(&mut self, a: &str, b: &str) -> &mut Feedback {
        let k = key(a, b);
        self.same.remove(&k);
        self.different.insert(k);
        self
    }

    /// The recorded judgment for a pair, if any: `Some(true)` = same
    /// concept, `Some(false)` = different.
    pub fn judgment(&self, a: &str, b: &str) -> Option<bool> {
        let k = key(a, b);
        if self.same.contains(&k) {
            Some(true)
        } else if self.different.contains(&k) {
            Some(false)
        } else {
            None
        }
    }

    /// Number of recorded judgments.
    pub fn len(&self) -> usize {
        self.same.len() + self.different.len()
    }

    /// Whether no judgment has been recorded.
    pub fn is_empty(&self) -> bool {
        self.same.is_empty() && self.different.is_empty()
    }

    /// Every recorded judgment as `(a, b, same-concept?)`, names in
    /// canonical (sorted) order.
    pub fn judgments(&self) -> impl Iterator<Item = (&str, &str, bool)> {
        self.same
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str(), true))
            .chain(
                self.different
                    .iter()
                    .map(|(a, b)| (a.as_str(), b.as_str(), false)),
            )
    }

    /// Fold another batch of judgments into this one. On conflict the
    /// incoming judgment wins, matching the latest-wins rule of
    /// [`confirm_same`](Feedback::confirm_same) /
    /// [`confirm_different`](Feedback::confirm_different).
    pub fn merge(&mut self, other: &Feedback) {
        for (a, b, same) in other.judgments() {
            if same {
                self.confirm_same(a, b);
            } else {
                self.confirm_different(a, b);
            }
        }
    }

    /// Wrap a base measure so it honors this feedback: confirmed-same pairs
    /// score 1.0, confirmed-different pairs 0.0, everything else defers to
    /// `base`. Re-running [`UdiSystem::setup_with_measure`] with the
    /// wrapped measure folds the feedback into the whole pipeline — graph,
    /// schemas, correspondences and p-mappings alike.
    pub fn wrap<'a>(&'a self, base: &'a (dyn Similarity + Sync)) -> FeedbackMeasure<'a> {
        FeedbackMeasure {
            feedback: self,
            base,
        }
    }
}

/// A similarity measure overridden by human judgments (see
/// [`Feedback::wrap`]).
pub struct FeedbackMeasure<'a> {
    feedback: &'a Feedback,
    base: &'a (dyn Similarity + Sync),
}

impl Similarity for FeedbackMeasure<'_> {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        match self.feedback.judgment(a, b) {
            Some(true) => 1.0,
            Some(false) => 0.0,
            None => self.base.similarity(a, b),
        }
    }
}

/// An uncertain clustering decision worth asking a human about.
#[derive(Debug, Clone, PartialEq)]
pub struct Question {
    /// First attribute name.
    pub a: String,
    /// Second attribute name.
    pub b: String,
    /// Probability mass of the schemas that cluster the pair together.
    pub p_together: f64,
}

impl Question {
    /// How informative the answer is: mass on the minority hypothesis.
    /// `0.5` is a coin flip (most valuable), `~0` means the system is
    /// already nearly sure.
    pub fn uncertainty(&self) -> f64 {
        self.p_together.min(1.0 - self.p_together)
    }
}

/// Rank the attribute pairs whose clustering differs across the possible
/// mediated schemas, most uncertain first. This is where human feedback
/// buys the most: answering a `p ≈ 0.5` question collapses half the
/// schema distribution.
pub fn suggest_questions(system: &UdiSystem) -> Vec<Question> {
    let vocab = system.schema_set().vocab();
    let pmed = system.pmed();
    let attrs: Vec<_> = pmed.top().attribute_set().into_iter().collect();
    let mut out = Vec::new();
    for (i, &x) in attrs.iter().enumerate() {
        for &y in attrs.get(i + 1..).unwrap_or(&[]) {
            let mut together = 0.0;
            let mut differs = false;
            let first = pmed
                .schemas()
                .first()
                .map(|(m, _)| m.cluster_of(x) == m.cluster_of(y))
                .unwrap_or(true);
            for (m, p) in pmed.schemas() {
                let t = m.cluster_of(x) == m.cluster_of(y);
                if t {
                    together += p;
                }
                if t != first {
                    differs = true;
                }
            }
            if differs {
                out.push(Question {
                    a: vocab.name(x).to_owned(),
                    b: vocab.name(y).to_owned(),
                    p_together: together,
                });
            }
        }
    }
    out.sort_by(|p, q| {
        q.uncertainty()
            .partial_cmp(&p.uncertainty())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (p.a.clone(), p.b.clone()).cmp(&(q.a.clone(), q.b.clone())))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::UdiConfig;
    use udi_similarity::AttributeSimilarity;
    use udi_store::{Catalog, Table};

    fn uncertain_catalog() -> Catalog {
        // `issue` vs `issn` sits in the uncertain band: the p-med-schema
        // branches on it.
        let mut c = Catalog::new();
        for (name, attrs) in [
            ("s1", vec!["title", "issue", "issn"]),
            ("s2", vec!["title", "issue"]),
            ("s3", vec!["title", "issn"]),
            ("s4", vec!["title", "issue", "issn"]),
        ] {
            let mut t = Table::new(name, attrs.clone());
            t.push_raw_row(attrs.iter().map(|_| "v")).unwrap();
            c.add_source(t).unwrap();
        }
        c
    }

    #[test]
    fn judgments_record_and_override() {
        let mut f = Feedback::new();
        assert!(f.is_empty());
        f.confirm_same("phone", "tel");
        assert_eq!(f.judgment("tel", "phone"), Some(true), "order-insensitive");
        f.confirm_different("phone", "tel");
        assert_eq!(f.judgment("phone", "tel"), Some(false), "latest wins");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn wrapped_measure_overrides_base() {
        let mut f = Feedback::new();
        f.confirm_same("issue", "issn");
        f.confirm_different("title", "issue");
        let base = AttributeSimilarity::default();
        let m = f.wrap(&base);
        assert_eq!(m.similarity("issue", "issn"), 1.0);
        assert_eq!(m.similarity("issn", "issue"), 1.0);
        assert_eq!(m.similarity("title", "issue"), 0.0);
        // Unjudged pairs defer to the base measure.
        assert_eq!(
            m.similarity("title", "titles"),
            base.similarity("title", "titles")
        );
    }

    #[test]
    fn questions_surface_the_uncertain_pair() {
        let udi = UdiSystem::setup(uncertain_catalog(), UdiConfig::default()).unwrap();
        assert!(udi.pmed().len() >= 2, "fixture must branch");
        let qs = suggest_questions(&udi);
        assert!(!qs.is_empty());
        let top = &qs[0];
        let pair = [top.a.as_str(), top.b.as_str()];
        assert!(pair.contains(&"issue") && pair.contains(&"issn"), "{qs:?}");
        assert!(top.uncertainty() > 0.0);
        assert!(top.p_together > 0.0 && top.p_together < 1.0);
    }

    #[test]
    fn answering_the_question_collapses_the_schema() {
        let catalog = uncertain_catalog();
        let udi = UdiSystem::setup(catalog.clone(), UdiConfig::default()).unwrap();
        let before = udi.pmed().len();
        assert!(before >= 2);

        // The human says: issue and issn are different concepts.
        let mut f = Feedback::new();
        f.confirm_different("issue", "issn");
        let base = AttributeSimilarity::default();
        let measure = f.wrap(&base);
        let improved =
            UdiSystem::setup_with_measure(catalog, &measure, UdiConfig::default()).unwrap();
        assert!(
            improved.pmed().len() < before,
            "answered question must stop branching: {} -> {}",
            before,
            improved.pmed().len()
        );
        // And the pair is no longer clustered anywhere.
        let vocab = improved.schema_set().vocab();
        let issue = vocab.id_of("issue").unwrap();
        let issn = vocab.id_of("issn").unwrap();
        for (m, _) in improved.pmed().schemas() {
            assert_ne!(m.cluster_of(issue), m.cluster_of(issn));
        }
        // No more questions about that pair.
        let qs = suggest_questions(&improved);
        assert!(!qs
            .iter()
            .any(|q| [q.a.as_str(), q.b.as_str()] == ["issn", "issue"]
                || [q.a.as_str(), q.b.as_str()] == ["issue", "issn"]));
    }

    #[test]
    fn deterministic_schema_has_no_questions() {
        let mut c = Catalog::new();
        let mut t = Table::new("s", ["name", "phone"]);
        t.push_raw_row(["x", "1"]).unwrap();
        c.add_source(t).unwrap();
        let mut t2 = Table::new("s2", ["name", "phone"]);
        t2.push_raw_row(["y", "2"]).unwrap();
        c.add_source(t2).unwrap();
        let udi = UdiSystem::setup(c, UdiConfig::default()).unwrap();
        assert!(udi.pmed().is_deterministic());
        assert!(suggest_questions(&udi).is_empty());
    }
}

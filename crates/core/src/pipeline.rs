//! Setup configuration, timings and diagnostics.

use std::time::Duration;

use udi_schema::UdiParams;
use udi_similarity::{
    AttributeSimilarity, JaroWinkler, Levenshtein, NGramJaccard, Similarity, TokenHybrid,
};

/// Which pairwise attribute-similarity measure setup uses.
///
/// The paper used Jaro–Winkler (via SecondString); [`MeasureKind::Default`]
/// adds name normalization and a token hybrid on top, which is strictly
/// better on web-table labels. The enum keeps configurations serializable
/// and cloneable; fully custom measures can be passed to
/// [`crate::UdiSystem::setup_with_measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeasureKind {
    /// Normalized names + Jaro–Winkler + token hybrid.
    #[default]
    Default,
    /// Plain Jaro–Winkler on raw labels (the paper's configuration).
    JaroWinkler,
    /// Normalized Levenshtein similarity.
    Levenshtein,
    /// Character trigram Jaccard.
    TrigramJaccard,
    /// Symmetric Monge–Elkan over name tokens.
    TokenHybrid,
}

impl MeasureKind {
    /// Instantiate the measure.
    pub fn build(self) -> Box<dyn Similarity + Send + Sync> {
        match self {
            MeasureKind::Default => Box::new(AttributeSimilarity::default()),
            MeasureKind::JaroWinkler => Box::new(JaroWinkler::default()),
            MeasureKind::Levenshtein => Box::new(Levenshtein),
            MeasureKind::TrigramJaccard => Box::new(NGramJaccard::default()),
            MeasureKind::TokenHybrid => Box::new(TokenHybrid),
        }
    }
}

/// Complete setup configuration: algorithm parameters plus the similarity
/// measure.
#[derive(Debug, Clone)]
pub struct UdiConfig {
    /// Thresholds, caps, and solver settings (§7.1 defaults).
    pub params: UdiParams,
    /// Pairwise attribute-name measure.
    pub measure: MeasureKind,
    /// Worker threads for p-mapping generation (stage 3, the dominant
    /// cost, which is independent per source). `1` (the default) runs
    /// in-line; any value produces identical results — sources are
    /// processed deterministically and independently, over a frozen
    /// (lock-free) similarity matrix. Worthwhile only up to the physical
    /// core count; beyond that it just adds scheduling overhead.
    pub threads: usize,
    /// Use n-gram blocking to restrict pairwise scoring to candidate
    /// pairs sharing at least one character bigram (on by default).
    /// Blocking prunes pairs whose similarity cannot plausibly reach the
    /// scoring floor `min(τ − ε, pair_floor)`; pruned pairs are treated
    /// as similarity 0, exactly as sub-threshold pairs already are, so on
    /// corpora where no high-similarity pair is gram-disjoint the outputs
    /// are bit-identical to exhaustive scoring (the property test
    /// `tests/blocking_properties.rs` gates this). Turn off to force
    /// exhaustive all-pairs scoring for adversarial vocabularies.
    pub blocking: bool,
}

impl Default for UdiConfig {
    fn default() -> Self {
        UdiConfig {
            params: UdiParams::default(),
            measure: MeasureKind::default(),
            threads: 1,
            blocking: true,
        }
    }
}

/// Wall-clock duration of each setup stage — the four steps of Figure 7:
/// "(1) importing source schemas, (2) creating a p-med-schema, (3) creating
/// a p-mapping between each source schema and each possible mediated schema,
/// and (4) consolidating the p-med-schema and the p-mappings."
#[derive(Debug, Clone, Copy, Default)]
pub struct SetupTimings {
    /// Stage 1: schema import and attribute statistics.
    pub import: Duration,
    /// Stage 2: p-med-schema construction.
    pub med_schema: Duration,
    /// Stage 3: p-mapping generation (dominated by entropy maximization,
    /// as the paper observes).
    pub pmappings: Duration,
    /// Stage 4: consolidation.
    pub consolidation: Duration,
}

impl SetupTimings {
    /// Total setup time.
    pub fn total(&self) -> Duration {
        self.import + self.med_schema + self.pmappings + self.consolidation
    }
}

/// Cache behavior of one [`crate::engine::SetupEngine::refresh`]: how much
/// of each stage was served from cached artifacts versus recomputed. All
/// counters cover that single refresh, not the engine's lifetime.
///
/// Since the observability layer landed this is a *view*: the engine
/// records `engine.*` and `maxent.*` counters through its always-on
/// [`udi_obs::CounterSink`] and derives these numbers from the sink's
/// before/after totals around the refresh (see `OBSERVABILITY.md`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Pairwise similarities found already pinned in the similarity cache.
    pub sim_hits: usize,
    /// Pairwise similarities computed (and pinned) this refresh.
    pub sim_misses: usize,
    /// Whether the similarity graph changed, forcing the `2^u` mediated-
    /// schema enumeration to re-run.
    pub schemas_reenumerated: bool,
    /// Per-(source, schema) p-mappings reused from the previous refresh.
    pub rows_reused: usize,
    /// Per-(source, schema) p-mappings (re)computed this refresh.
    pub rows_computed: usize,
    /// Max-entropy group solves answered from the canonical-form cache.
    pub solve_hits: u64,
    /// Max-entropy group solves that ran the solver.
    pub solve_misses: u64,
}

impl CacheStats {
    /// Fraction of per-(source, schema) p-mappings served from cache, in
    /// `[0, 1]`. `0.0` when nothing was needed.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.rows_reused + self.rows_computed;
        if total == 0 {
            0.0
        } else {
            self.rows_reused as f64 / total as f64
        }
    }

    /// Fraction of max-entropy group solves served from the canonical-form
    /// cache, in `[0, 1]`. `0.0` when no group was solved.
    pub fn solve_hit_rate(&self) -> f64 {
        let total = self.solve_hits + self.solve_misses;
        if total == 0 {
            0.0
        } else {
            self.solve_hits as f64 / total as f64
        }
    }
}

/// Setup diagnostics returned alongside the configured system.
#[derive(Debug, Clone, Default)]
pub struct SetupReport {
    /// Per-stage wall-clock timings of the refresh that produced this
    /// report. `None` on the manual [`crate::UdiSystem::from_parts`] path,
    /// where nothing beyond consolidation is computed (and hence nothing is
    /// measured) — previously this was silently all-zero, which was
    /// indistinguishable from a very fast refresh.
    pub timings: Option<SetupTimings>,
    /// Number of sources integrated.
    pub n_sources: usize,
    /// Distinct attribute names across all sources.
    pub n_attributes: usize,
    /// Attributes that survived the θ frequency filter.
    pub n_frequent: usize,
    /// Possible mediated schemas in the p-med-schema.
    pub n_schemas: usize,
    /// Total explicit mappings across all per-schema p-mappings.
    pub n_mappings: usize,
    /// Mappings in the consolidated p-mappings (all sources).
    pub n_consolidated_mappings: usize,
    /// Cache hit/miss counters of the refresh that produced this report.
    pub cache: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_measure_kind_builds() {
        for kind in [
            MeasureKind::Default,
            MeasureKind::JaroWinkler,
            MeasureKind::Levenshtein,
            MeasureKind::TrigramJaccard,
            MeasureKind::TokenHybrid,
        ] {
            let m = kind.build();
            let s = m.similarity("phone", "phone");
            assert!((s - 1.0).abs() < 1e-12, "{kind:?}");
        }
    }

    #[test]
    fn timings_total_sums_stages() {
        let t = SetupTimings {
            import: Duration::from_millis(1),
            med_schema: Duration::from_millis(2),
            pmappings: Duration::from_millis(3),
            consolidation: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }

    #[test]
    fn default_config_uses_paper_params() {
        let c = UdiConfig::default();
        assert_eq!(c.params.tau, 0.85);
        assert_eq!(c.measure, MeasureKind::Default);
    }
}

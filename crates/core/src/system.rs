//! The configured UDI system: a thin facade over the incremental
//! [`SetupEngine`].
//!
//! [`UdiSystem::setup`] is a one-shot drive of the engine; the incremental
//! entry points ([`UdiSystem::add_source`], [`UdiSystem::remove_source`],
//! [`UdiSystem::apply_feedback`]) mutate the engine's inputs and refresh,
//! recomputing only the stage artifacts the mutation invalidated. Both
//! paths run the identical stage code, so a system evolved incrementally
//! answers queries exactly like one set up from scratch on the same
//! catalog and feedback.

use udi_schema::{MediatedSchema, PMapping, PMedSchema, SchemaSet};
use udi_similarity::Similarity;
use udi_store::{Catalog, Table};

use crate::engine::SetupEngine;
use crate::feedback::Feedback;
use crate::pipeline::{SetupReport, UdiConfig};
use crate::prepared::PlanCache;
use crate::UdiError;

/// A fully configured data integration system: sources, probabilistic
/// mediated schema, p-mappings, and the consolidated schema exposed to
/// users.
///
/// `Clone` copies the engine's artifacts and snapshots the plan cache (the
/// plans themselves are shared `Arc`s); telemetry sinks stay shared — see
/// [`SetupEngine`]'s `Clone` notes. This is what makes the serve layer's
/// clone-mutate-publish refresh cheap: the clone starts with every warm
/// cache the original had.
#[derive(Debug, Clone)]
pub struct UdiSystem {
    engine: SetupEngine,
    /// Prepared-query plans, keyed by `(path, query text)` and validated
    /// against the engine generation — see [`crate::prepared`].
    plans: PlanCache,
}

impl UdiSystem {
    /// Run the complete self-configuration pipeline with the configured
    /// similarity measure.
    pub fn setup(catalog: Catalog, config: UdiConfig) -> Result<UdiSystem, UdiError> {
        let measure = config.measure.build();
        Self::setup_inner(catalog, &*measure, config)
    }

    /// Run setup with a caller-supplied similarity measure (the pipeline
    /// treats the matcher as a black box, as §4.1 prescribes). The measure
    /// must be `Sync` so p-mapping generation can fan out across
    /// `config.threads` workers.
    ///
    /// A system set up this way should keep using the `*_with_measure`
    /// mutation variants with the *same* measure — the plain
    /// [`add_source`](UdiSystem::add_source) /
    /// [`apply_feedback`](UdiSystem::apply_feedback) rebuild the measure
    /// from `config.measure`, which would mix two different similarity
    /// functions into one similarity cache.
    ///
    /// Blocking is force-disabled on this path, whatever `config` says:
    /// the n-gram index only scores pairs sharing a character bigram,
    /// which is justified for the built-in measures on realistic labels
    /// but can silently starve an arbitrary matcher — a
    /// [`Feedback::wrap`]ped measure, for instance, may score a pair high
    /// that shares no gram at all. Black-box measures are scored
    /// exhaustively, exactly like [`setup`](UdiSystem::setup) with
    /// `blocking: false`.
    pub fn setup_with_measure(
        catalog: Catalog,
        measure: &(dyn Similarity + Sync),
        mut config: UdiConfig,
    ) -> Result<UdiSystem, UdiError> {
        config.blocking = false;
        Self::setup_inner(catalog, measure, config)
    }

    fn setup_inner(
        catalog: Catalog,
        measure: &(dyn Similarity + Sync),
        config: UdiConfig,
    ) -> Result<UdiSystem, UdiError> {
        let mut engine = SetupEngine::new(catalog, config);
        engine.refresh(measure)?;
        Ok(UdiSystem {
            engine,
            plans: PlanCache::new(),
        })
    }

    /// [`setup`](UdiSystem::setup) with a trace sink installed *before* the
    /// initial refresh, so the trace covers the whole configuration run:
    /// stage spans, per-row build spans, cache counters, and solver
    /// observations (see `OBSERVABILITY.md` for the span taxonomy).
    pub fn setup_observed(
        catalog: Catalog,
        config: UdiConfig,
        sink: std::sync::Arc<dyn udi_obs::Sink>,
    ) -> Result<UdiSystem, UdiError> {
        let measure = config.measure.build();
        let mut engine = SetupEngine::new(catalog, config);
        engine.set_sink(Some(sink));
        engine.refresh(&*measure)?;
        Ok(UdiSystem {
            engine,
            plans: PlanCache::new(),
        })
    }

    /// Install (or, with `None`, remove) a trace sink on the underlying
    /// engine. Subsequent refreshes and queries record through it; the
    /// internal counter aggregate behind [`SetupReport`] stays on either
    /// way.
    pub fn set_sink(&mut self, sink: Option<std::sync::Arc<dyn udi_obs::Sink>>) {
        self.engine.set_sink(sink);
    }

    /// Assemble a system from explicitly supplied parts: a catalog, a
    /// p-med-schema, and one p-mapping per `(source, possible schema)` pair
    /// (`pmappings[source][schema]`). Consolidation runs automatically.
    ///
    /// This is the pay-as-you-go improvement hook: an administrator (or a
    /// feedback loop) can replace the automatically generated schema or
    /// mappings with corrected ones and keep the same query-answering
    /// machinery. It is also how the worked examples of the paper (Figure 1)
    /// are reproduced exactly.
    ///
    /// The report carries no timings (nothing beyond consolidation is
    /// computed, so there is nothing to measure); `n_frequent` is still
    /// derived from the imported schema set under the default θ. Note that
    /// a subsequent incremental mutation re-derives the mediated schema
    /// from the similarity pipeline, replacing the manual parts.
    pub fn from_parts(
        catalog: Catalog,
        pmed: PMedSchema,
        pmappings: Vec<Vec<PMapping>>,
    ) -> Result<UdiSystem, UdiError> {
        let engine = SetupEngine::from_parts(catalog, pmed, pmappings, UdiConfig::default())?;
        Ok(UdiSystem {
            engine,
            plans: PlanCache::new(),
        })
    }

    /// Register a new source and re-configure incrementally: only the new
    /// source's p-mappings (and whatever the new source shifts — attribute
    /// frequencies, the similarity graph) are recomputed; every unaffected
    /// stage artifact is reused. The result is identical to a fresh
    /// [`setup`](UdiSystem::setup) over the extended catalog.
    ///
    /// On error the source stays registered but unconfigured; the query
    /// surface keeps serving the last successful state, and a later
    /// successful mutation completes the new source.
    pub fn add_source(&mut self, table: Table) -> Result<(), UdiError> {
        let measure = self.engine.config().measure.build();
        self.add_source_with_measure(table, &*measure)
    }

    /// [`add_source`](UdiSystem::add_source) with a caller-supplied
    /// measure — required for systems set up via
    /// [`setup_with_measure`](UdiSystem::setup_with_measure). Pass the same
    /// measure used at setup.
    pub fn add_source_with_measure(
        &mut self,
        table: Table,
        measure: &(dyn Similarity + Sync),
    ) -> Result<(), UdiError> {
        self.engine.add_source(table)?;
        let out = self.engine.refresh(measure);
        self.plans = PlanCache::new();
        out
    }

    /// Drop the source named `name` and re-configure incrementally.
    /// Returns the removed table. Attribute ids stay stable; attributes
    /// now orphaned simply fall out of the frequent set.
    pub fn remove_source(&mut self, name: &str) -> Result<Table, UdiError> {
        let measure = self.engine.config().measure.build();
        self.remove_source_with_measure(name, &*measure)
    }

    /// [`remove_source`](UdiSystem::remove_source) with a caller-supplied
    /// measure.
    pub fn remove_source_with_measure(
        &mut self,
        name: &str,
        measure: &(dyn Similarity + Sync),
    ) -> Result<Table, UdiError> {
        let table = self.engine.remove_source(name)?;
        self.engine.refresh(measure)?;
        self.plans = PlanCache::new();
        Ok(table)
    }

    /// Fold human judgments in and re-configure incrementally: judged
    /// pairs are pinned to similarity 1/0, and only the artifacts they
    /// reach (graph → schemas → mappings of the touched sources) are
    /// recomputed. Equivalent to a fresh
    /// [`setup_with_measure`](UdiSystem::setup_with_measure) under
    /// [`Feedback::wrap`], at a fraction of the work.
    pub fn apply_feedback(&mut self, feedback: &Feedback) -> Result<(), UdiError> {
        let measure = self.engine.config().measure.build();
        self.apply_feedback_with_measure(feedback, &*measure)
    }

    /// [`apply_feedback`](UdiSystem::apply_feedback) with a caller-supplied
    /// base measure.
    pub fn apply_feedback_with_measure(
        &mut self,
        feedback: &Feedback,
        measure: &(dyn Similarity + Sync),
    ) -> Result<(), UdiError> {
        self.engine.apply_feedback(feedback);
        let out = self.engine.refresh(measure);
        self.plans = PlanCache::new();
        out
    }

    /// The underlying incremental setup engine (read-only).
    pub fn engine(&self) -> &SetupEngine {
        &self.engine
    }

    /// Set how many worker threads query execution (and setup stage 3) may
    /// use. `1` forces the sequential path; answers are byte-identical at
    /// every thread count. Changing the count does not invalidate cached
    /// plans — only artifact mutations do.
    pub fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    /// The prepared-plan cache (see [`crate::prepared`]).
    pub(crate) fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// Number of cached query plans, current or stale — a diagnostic for
    /// tests and serving dashboards.
    pub fn plan_cache_len(&self) -> usize {
        self.plans.len()
    }

    /// Install previously accumulated feedback without reconfiguring —
    /// used when loading a snapshot, where the supplied p-mappings already
    /// reflect the feedback.
    pub(crate) fn restore_feedback(&mut self, feedback: Feedback) {
        self.engine.set_feedback(feedback);
    }

    /// All feedback folded into the system so far.
    pub fn feedback(&self) -> &Feedback {
        self.engine.feedback()
    }

    /// The underlying source catalog.
    pub fn catalog(&self) -> &Catalog {
        self.engine.catalog()
    }

    /// The imported schema set (vocabulary + source schemas).
    pub fn schema_set(&self) -> &SchemaSet {
        self.engine.schema_set()
    }

    /// The probabilistic mediated schema.
    pub fn pmed(&self) -> &PMedSchema {
        self.engine.pmed()
    }

    /// The p-mapping between source `src` (catalog order) and possible
    /// mediated schema `schema` (`pmed().schemas()` order).
    pub fn pmapping(&self, src: usize, schema: usize) -> &PMapping {
        self.engine.pmapping(src, schema)
    }

    /// The consolidated deterministic mediated schema exposed to users.
    pub fn consolidated(&self) -> &MediatedSchema {
        self.engine.consolidated()
    }

    /// The consolidated (one-to-many) p-mapping for source `src`.
    pub fn consolidated_pmapping(&self, src: usize) -> &PMapping {
        self.engine.consolidated_pmapping(src)
    }

    /// Diagnostics of the most recent (re)configuration, including
    /// per-stage cache hit counters.
    pub fn report(&self) -> &SetupReport {
        self.engine.report()
    }

    /// The exposed mediated schema as `(representative name, members)`,
    /// one entry per consolidated mediated attribute. The representative is
    /// the member that occurs in the most sources ("in practice, we can use
    /// the most frequent source attribute to represent a mediated
    /// attribute"), ties broken lexicographically.
    pub fn exposed_schema(&self) -> Vec<(String, Vec<String>)> {
        let schema_set = self.schema_set();
        self.consolidated()
            .clusters()
            .iter()
            .map(|cluster| {
                let mut members: Vec<(f64, &str)> = cluster
                    .iter()
                    .map(|&a| (schema_set.frequency(a), schema_set.vocab().name(a)))
                    .collect();
                members.sort_by(|(fa, na), (fb, nb)| {
                    fb.partial_cmp(fa)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| na.cmp(nb))
                });
                let rep = members
                    .first()
                    .map(|(_, n)| (*n).to_owned())
                    .unwrap_or_default();
                let names = members.into_iter().map(|(_, n)| n.to_owned()).collect();
                (rep, names)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_store::{StoreError, Table};

    fn people_catalog() -> Catalog {
        let mut c = Catalog::new();
        let specs: &[(&str, &[&str])] = &[
            ("s1", &["name", "phone", "address"]),
            ("s2", &["name", "phone-no", "addr"]),
            ("s3", &["name", "phone", "address"]),
            ("s4", &["name", "phone", "city"]),
        ];
        for (name, attrs) in specs {
            let mut t = Table::new(*name, attrs.iter().copied());
            let row: Vec<String> = attrs.iter().map(|a| format!("{a}-val")).collect();
            t.push_raw_row(row).unwrap();
            c.add_source(t).unwrap();
        }
        c
    }

    #[test]
    fn setup_produces_consistent_structure() {
        let udi = UdiSystem::setup(people_catalog(), UdiConfig::default()).unwrap();
        assert_eq!(udi.report().n_sources, 4);
        for src in 0..4 {
            for schema in 0..udi.pmed().len() {
                assert!(udi.pmapping(src, schema).len() >= 1);
            }
            assert!(udi.consolidated_pmapping(src).len() >= 1);
        }
        // phone and phone-no should share a consolidated cluster.
        let vocab = udi.schema_set().vocab();
        let phone = vocab.id_of("phone").unwrap();
        let phone_no = vocab.id_of("phone-no").unwrap();
        assert_eq!(
            udi.consolidated().cluster_of(phone),
            udi.consolidated().cluster_of(phone_no)
        );
    }

    #[test]
    fn empty_catalog_is_rejected() {
        let err = UdiSystem::setup(Catalog::new(), UdiConfig::default()).unwrap_err();
        assert!(matches!(err, UdiError::EmptyCatalog));
    }

    #[test]
    fn from_parts_rejects_misshapen_mappings() {
        let udi = UdiSystem::setup(people_catalog(), UdiConfig::default()).unwrap();
        let pmed = udi.pmed().clone();
        let rows: Vec<Vec<PMapping>> = (0..4)
            .map(|s| {
                (0..pmed.len())
                    .map(|m| udi.pmapping(s, m).clone())
                    .collect()
            })
            .collect();

        // Wrong number of rows.
        let mut short = rows.clone();
        short.pop();
        let err = UdiSystem::from_parts(udi.catalog().clone(), pmed.clone(), short).unwrap_err();
        assert!(
            matches!(
                err,
                UdiError::MappingRowMismatch {
                    expected: 4,
                    got: 3
                }
            ),
            "{err}"
        );

        // Wrong number of columns in one row.
        let mut ragged = rows.clone();
        ragged[2].pop();
        let err = UdiSystem::from_parts(udi.catalog().clone(), pmed.clone(), ragged).unwrap_err();
        assert!(
            matches!(err, UdiError::MappingColumnMismatch { source: 2, .. }),
            "{err}"
        );

        // Well-formed parts reassemble, with counts in the report.
        let rebuilt = UdiSystem::from_parts(udi.catalog().clone(), pmed, rows).unwrap();
        assert_eq!(rebuilt.consolidated(), udi.consolidated());
        assert_eq!(rebuilt.report().n_frequent, udi.report().n_frequent);
        assert!(
            rebuilt.report().timings.is_none(),
            "manual assembly measures nothing"
        );
    }

    #[test]
    fn incremental_add_matches_batch_setup() {
        let mut catalog = people_catalog();
        let mut t = Table::new("s5", ["name", "phone", "zip"]);
        t.push_raw_row(["n", "p", "z"]).unwrap();
        catalog.add_source(t.clone()).unwrap();

        let batch = UdiSystem::setup(catalog, UdiConfig::default()).unwrap();

        let mut incr = UdiSystem::setup(people_catalog(), UdiConfig::default()).unwrap();
        incr.add_source(t).unwrap();

        assert_eq!(incr.pmed().len(), batch.pmed().len());
        for ((ma, pa), (mb, pb)) in incr.pmed().schemas().iter().zip(batch.pmed().schemas()) {
            assert_eq!(ma, mb);
            assert!((pa - pb).abs() < 1e-12);
        }
        assert_eq!(incr.consolidated(), batch.consolidated());
        for src in 0..5 {
            for schema in 0..batch.pmed().len() {
                assert_eq!(
                    incr.pmapping(src, schema).mappings(),
                    batch.pmapping(src, schema).mappings()
                );
            }
        }
    }

    #[test]
    fn remove_source_reconfigures() {
        let mut udi = UdiSystem::setup(people_catalog(), UdiConfig::default()).unwrap();
        let t = udi.remove_source("s2").unwrap();
        assert_eq!(t.name(), "s2");
        assert_eq!(udi.report().n_sources, 3);
        // phone-no left with s2; it must be gone from the consolidated
        // schema.
        let vocab = udi.schema_set().vocab();
        let phone_no = vocab.id_of("phone-no").unwrap();
        assert_eq!(udi.consolidated().cluster_of(phone_no), None);
        assert!(matches!(
            udi.remove_source("nope"),
            Err(UdiError::Store(StoreError::UnknownSourceName(_)))
        ));
    }

    #[test]
    fn exposed_schema_picks_most_frequent_representative() {
        let udi = UdiSystem::setup(people_catalog(), UdiConfig::default()).unwrap();
        let exposed = udi.exposed_schema();
        // `phone` occurs in 3 sources, `phone-no` in 1 → representative is
        // `phone`.
        let phone_entry = exposed
            .iter()
            .find(|(_, members)| members.iter().any(|m| m == "phone-no"))
            .expect("phone cluster present");
        assert_eq!(phone_entry.0, "phone");
    }

    #[test]
    fn custom_corpus_aware_measure_plugs_in() {
        // §4.1: the pipeline treats the matcher as a black box. Soft
        // TF-IDF needs the corpus up front, so it goes through
        // `setup_with_measure`.
        let catalog = people_catalog();
        let names: Vec<String> = catalog.attribute_universe().map(str::to_owned).collect();
        let measure = udi_similarity::SoftTfIdf::from_names(&names);
        let udi = UdiSystem::setup_with_measure(catalog, &measure, UdiConfig::default()).unwrap();
        assert!(udi.report().n_schemas >= 1);
        let vocab = udi.schema_set().vocab();
        let name = vocab.id_of("name").unwrap();
        assert!(udi.consolidated().cluster_of(name).is_some());
    }

    #[test]
    fn report_counts_are_plausible() {
        let udi = UdiSystem::setup(people_catalog(), UdiConfig::default()).unwrap();
        let r = udi.report();
        assert_eq!(r.n_attributes, 6); // name, phone, address, phone-no, addr, city
        assert!(r.n_frequent >= 3);
        assert!(r.n_schemas >= 1);
        assert!(
            r.n_mappings >= r.n_sources,
            "at least one mapping per source"
        );
        assert!(r.n_consolidated_mappings >= r.n_sources);
        // A fresh setup computes everything.
        assert_eq!(r.cache.rows_reused, 0);
        assert_eq!(r.cache.rows_computed, r.n_sources * r.n_schemas);
        assert!(r.cache.sim_misses > 0);
    }
}

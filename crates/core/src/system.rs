//! The configured UDI system and its setup pipeline.

use std::time::Instant;

use udi_schema::{
    build_p_med_schema, consolidate_pmappings, consolidate_schemas, generate_pmapping,
    MediatedSchema, PMapping, PMedSchema, SchemaSet, SimilarityMatrix,
};
use udi_similarity::Similarity;
use udi_store::Catalog;

use crate::pipeline::{SetupReport, SetupTimings, UdiConfig};
use crate::UdiError;

/// A fully configured data integration system: sources, probabilistic
/// mediated schema, p-mappings, and the consolidated schema exposed to
/// users.
#[derive(Debug)]
pub struct UdiSystem {
    pub(crate) catalog: Catalog,
    pub(crate) schema_set: SchemaSet,
    pub(crate) pmed: PMedSchema,
    /// `pmappings[source][schema]`, aligned with catalog order and
    /// `pmed.schemas()` order.
    pub(crate) pmappings: Vec<Vec<PMapping>>,
    pub(crate) consolidated: MediatedSchema,
    /// One consolidated p-mapping per source.
    pub(crate) cons_pmappings: Vec<PMapping>,
    pub(crate) report: SetupReport,
}

impl UdiSystem {
    /// Run the complete self-configuration pipeline with the configured
    /// similarity measure.
    pub fn setup(catalog: Catalog, config: UdiConfig) -> Result<UdiSystem, UdiError> {
        let measure = config.measure.build();
        Self::setup_with_measure(catalog, &*measure, config)
    }

    /// Run setup with a caller-supplied similarity measure (the pipeline
    /// treats the matcher as a black box, as §4.1 prescribes). The measure
    /// must be `Sync` so p-mapping generation can fan out across
    /// `config.threads` workers.
    pub fn setup_with_measure(
        catalog: Catalog,
        measure: &(dyn Similarity + Sync),
        config: UdiConfig,
    ) -> Result<UdiSystem, UdiError> {
        if catalog.source_count() == 0 {
            return Err(UdiError::EmptyCatalog);
        }
        let params = &config.params;
        let mut timings = SetupTimings::default();

        // Stage 1: import schemas.
        let t0 = Instant::now();
        let mut schema_set = SchemaSet::default();
        for (_, table) in catalog.iter_sources() {
            schema_set.add_source(table.name(), table.attributes().iter().map(String::as_str));
        }
        timings.import = t0.elapsed();

        // Stage 2: probabilistic mediated schema.
        let t1 = Instant::now();
        let pmed = build_p_med_schema(&schema_set, measure, params)?;
        timings.med_schema = t1.elapsed();

        // Stage 3: p-mapping per (source, possible mediated schema) —
        // independent per source, so it fans out across worker threads.
        let t2 = Instant::now();
        let lazy = SimilarityMatrix::new(schema_set.vocab(), measure);
        // Freeze the (source attribute × cluster member) similarity space
        // once: lookups in the hot loop become lock-free, which is what
        // lets the per-source fan-out actually scale.
        let all_attrs: Vec<udi_schema::AttrId> =
            schema_set.vocab().iter().map(|(id, _)| id).collect();
        let cluster_attrs: Vec<udi_schema::AttrId> = {
            let mut set = std::collections::BTreeSet::new();
            for (m, _) in pmed.schemas() {
                set.extend(m.attribute_set());
            }
            set.into_iter().collect()
        };
        let matrix = lazy.freeze(&all_attrs, &cluster_attrs);
        let sources = schema_set.sources();
        let per_source = |source: &udi_schema::SourceSchema| -> Result<Vec<PMapping>, UdiError> {
            let mut per_schema = Vec::with_capacity(pmed.len());
            for (med, _) in pmed.schemas() {
                per_schema.push(generate_pmapping(source, med, &matrix, params)?);
            }
            Ok(per_schema)
        };
        let pmappings: Vec<Vec<PMapping>> = if config.threads <= 1 || sources.len() < 2 {
            sources.iter().map(per_source).collect::<Result<_, _>>()?
        } else {
            let n_workers = config.threads.min(sources.len());
            let results: Vec<Result<Vec<Vec<PMapping>>, UdiError>> =
                std::thread::scope(|scope| {
                    let chunk = sources.len().div_ceil(n_workers);
                    let handles: Vec<_> = sources
                        .chunks(chunk)
                        .map(|part| scope.spawn(|| part.iter().map(per_source).collect()))
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
                });
            let mut all = Vec::with_capacity(sources.len());
            for r in results {
                all.extend(r?);
            }
            all
        };
        timings.pmappings = t2.elapsed();

        // Stage 4: consolidation.
        let t3 = Instant::now();
        let schemas: Vec<MediatedSchema> =
            pmed.schemas().iter().map(|(m, _)| m.clone()).collect();
        let consolidated = consolidate_schemas(&schemas);
        let cons_pmappings: Vec<PMapping> = pmappings
            .iter()
            .map(|per_schema| consolidate_pmappings(&pmed, per_schema, &consolidated))
            .collect();
        timings.consolidation = t3.elapsed();

        let report = SetupReport {
            timings,
            n_sources: catalog.source_count(),
            n_attributes: schema_set.vocab().len(),
            n_frequent: schema_set.frequent_attributes(params.theta).len(),
            n_schemas: pmed.len(),
            n_mappings: pmappings.iter().flatten().map(PMapping::len).sum(),
            n_consolidated_mappings: cons_pmappings.iter().map(PMapping::len).sum(),
        };

        Ok(UdiSystem {
            catalog,
            schema_set,
            pmed,
            pmappings,
            consolidated,
            cons_pmappings,
            report,
        })
    }

    /// Assemble a system from explicitly supplied parts: a catalog, a
    /// p-med-schema, and one p-mapping per `(source, possible schema)` pair
    /// (`pmappings[source][schema]`). Consolidation runs automatically.
    ///
    /// This is the pay-as-you-go improvement hook: an administrator (or a
    /// feedback loop) can replace the automatically generated schema or
    /// mappings with corrected ones and keep the same query-answering
    /// machinery. It is also how the worked examples of the paper (Figure 1)
    /// are reproduced exactly.
    pub fn from_parts(
        catalog: Catalog,
        pmed: PMedSchema,
        pmappings: Vec<Vec<PMapping>>,
    ) -> Result<UdiSystem, UdiError> {
        if catalog.source_count() == 0 {
            return Err(UdiError::EmptyCatalog);
        }
        assert_eq!(
            pmappings.len(),
            catalog.source_count(),
            "one p-mapping row per source"
        );
        for row in &pmappings {
            assert_eq!(row.len(), pmed.len(), "one p-mapping per possible schema");
        }
        let mut schema_set = SchemaSet::default();
        for (_, table) in catalog.iter_sources() {
            schema_set.add_source(table.name(), table.attributes().iter().map(String::as_str));
        }
        let schemas: Vec<MediatedSchema> =
            pmed.schemas().iter().map(|(m, _)| m.clone()).collect();
        let consolidated = consolidate_schemas(&schemas);
        let cons_pmappings: Vec<PMapping> = pmappings
            .iter()
            .map(|per_schema| consolidate_pmappings(&pmed, per_schema, &consolidated))
            .collect();
        let report = SetupReport {
            n_sources: catalog.source_count(),
            n_attributes: schema_set.vocab().len(),
            n_schemas: pmed.len(),
            n_mappings: pmappings.iter().flatten().map(PMapping::len).sum(),
            n_consolidated_mappings: cons_pmappings.iter().map(PMapping::len).sum(),
            ..SetupReport::default()
        };
        Ok(UdiSystem {
            catalog,
            schema_set,
            pmed,
            pmappings,
            consolidated,
            cons_pmappings,
            report,
        })
    }

    /// The underlying source catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The imported schema set (vocabulary + source schemas).
    pub fn schema_set(&self) -> &SchemaSet {
        &self.schema_set
    }

    /// The probabilistic mediated schema.
    pub fn pmed(&self) -> &PMedSchema {
        &self.pmed
    }

    /// The p-mapping between source `src` (catalog order) and possible
    /// mediated schema `schema` (`pmed().schemas()` order).
    pub fn pmapping(&self, src: usize, schema: usize) -> &PMapping {
        &self.pmappings[src][schema]
    }

    /// The consolidated deterministic mediated schema exposed to users.
    pub fn consolidated(&self) -> &MediatedSchema {
        &self.consolidated
    }

    /// The consolidated (one-to-many) p-mapping for source `src`.
    pub fn consolidated_pmapping(&self, src: usize) -> &PMapping {
        &self.cons_pmappings[src]
    }

    /// Setup diagnostics and stage timings.
    pub fn report(&self) -> &SetupReport {
        &self.report
    }

    /// The exposed mediated schema as `(representative name, members)`,
    /// one entry per consolidated mediated attribute. The representative is
    /// the member that occurs in the most sources ("in practice, we can use
    /// the most frequent source attribute to represent a mediated
    /// attribute"), ties broken lexicographically.
    pub fn exposed_schema(&self) -> Vec<(String, Vec<String>)> {
        self.consolidated
            .clusters()
            .iter()
            .map(|cluster| {
                let mut members: Vec<(f64, &str)> = cluster
                    .iter()
                    .map(|&a| (self.schema_set.frequency(a), self.schema_set.vocab().name(a)))
                    .collect();
                members.sort_by(|(fa, na), (fb, nb)| {
                    fb.partial_cmp(fa)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| na.cmp(nb))
                });
                let rep = members[0].1.to_owned();
                let names = members.into_iter().map(|(_, n)| n.to_owned()).collect();
                (rep, names)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_store::Table;

    fn people_catalog() -> Catalog {
        let mut c = Catalog::new();
        let specs: &[(&str, &[&str])] = &[
            ("s1", &["name", "phone", "address"]),
            ("s2", &["name", "phone-no", "addr"]),
            ("s3", &["name", "phone", "address"]),
            ("s4", &["name", "phone", "city"]),
        ];
        for (name, attrs) in specs {
            let mut t = Table::new(*name, attrs.iter().copied());
            let row: Vec<String> = attrs.iter().map(|a| format!("{a}-val")).collect();
            t.push_raw_row(row).unwrap();
            c.add_source(t);
        }
        c
    }

    #[test]
    fn setup_produces_consistent_structure() {
        let udi = UdiSystem::setup(people_catalog(), UdiConfig::default()).unwrap();
        assert_eq!(udi.report().n_sources, 4);
        assert_eq!(udi.pmappings.len(), 4);
        for per_schema in &udi.pmappings {
            assert_eq!(per_schema.len(), udi.pmed().len());
        }
        assert_eq!(udi.cons_pmappings.len(), 4);
        // phone and phone-no should share a consolidated cluster.
        let vocab = udi.schema_set().vocab();
        let phone = vocab.id_of("phone").unwrap();
        let phone_no = vocab.id_of("phone-no").unwrap();
        assert_eq!(
            udi.consolidated().cluster_of(phone),
            udi.consolidated().cluster_of(phone_no)
        );
    }

    #[test]
    fn empty_catalog_is_rejected() {
        let err = UdiSystem::setup(Catalog::new(), UdiConfig::default()).unwrap_err();
        assert!(matches!(err, UdiError::EmptyCatalog));
    }

    #[test]
    fn exposed_schema_picks_most_frequent_representative() {
        let udi = UdiSystem::setup(people_catalog(), UdiConfig::default()).unwrap();
        let exposed = udi.exposed_schema();
        // `phone` occurs in 3 sources, `phone-no` in 1 → representative is
        // `phone`.
        let phone_entry = exposed
            .iter()
            .find(|(_, members)| members.iter().any(|m| m == "phone-no"))
            .expect("phone cluster present");
        assert_eq!(phone_entry.0, "phone");
    }

    #[test]
    fn custom_corpus_aware_measure_plugs_in() {
        // §4.1: the pipeline treats the matcher as a black box. Soft
        // TF-IDF needs the corpus up front, so it goes through
        // `setup_with_measure`.
        let catalog = people_catalog();
        let names: Vec<String> = catalog
            .attribute_universe()
            .map(str::to_owned)
            .collect();
        let measure = udi_similarity::SoftTfIdf::from_names(&names);
        let udi =
            UdiSystem::setup_with_measure(catalog, &measure, UdiConfig::default()).unwrap();
        assert!(udi.report().n_schemas >= 1);
        let vocab = udi.schema_set().vocab();
        let name = vocab.id_of("name").unwrap();
        assert!(udi.consolidated().cluster_of(name).is_some());
    }

    #[test]
    fn report_counts_are_plausible() {
        let udi = UdiSystem::setup(people_catalog(), UdiConfig::default()).unwrap();
        let r = udi.report();
        assert_eq!(r.n_attributes, 6); // name, phone, address, phone-no, addr, city
        assert!(r.n_frequent >= 3);
        assert!(r.n_schemas >= 1);
        assert!(r.n_mappings >= r.n_sources, "at least one mapping per source");
        assert!(r.n_consolidated_mappings >= r.n_sources);
    }
}
